//! Response-time statistics collected by the simulator.
//!
//! Aggregation is streaming and integer-exact where it matters for
//! determinism: per-(flow, GMF frame) response times accumulate into a
//! log-bucketed [`ResponseHistogram`] over integer nanoseconds plus an
//! integer-nanosecond sum, so the reported mean and percentiles are
//! independent of sample order and never drift over long horizons (the
//! old raw float `sum += response` accumulated rounding error that broke
//! byte-identical run diffs at millions of samples).

use gmf_model::{FlowId, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One completed packet observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSample {
    /// The flow the packet belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub sequence: u64,
    /// GMF frame index the packet instantiates.
    pub gmf_frame: usize,
    /// Arrival time of the packet at its source.
    pub arrival: Time,
    /// Time at which the last Ethernet frame of the packet reached the
    /// destination.
    pub completion: Time,
}

impl PacketSample {
    /// End-to-end response time of the packet.
    pub fn response_time(&self) -> Time {
        self.completion - self.arrival
    }
}

/// Sub-bucket resolution of [`ResponseHistogram`]: 2^6 = 64 linear
/// sub-buckets per power-of-two octave, bounding the relative quantile
/// error by 1/64 ≈ 1.6%.
const SUB_BUCKET_BITS: u32 = 6;
/// Number of linear sub-buckets per octave.
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// A streaming fixed-precision histogram of response times, log-bucketed
/// on integer nanoseconds (HdrHistogram-style log-linear buckets).
///
/// Values below [`SUB_BUCKETS`] ns get exact unit buckets; above that,
/// each power-of-two octave is split into [`SUB_BUCKETS`] linear
/// sub-buckets, so any quantile is reported within one bucket (≤ 1.6%
/// relative error) of the exact order statistic while storage stays a few
/// kilobytes regardless of sample count.  The representation is canonical
/// for a given multiset of samples (the count vector spans exactly the
/// occupied bucket range), so equality and serialisation are
/// order-independent.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseHistogram {
    /// Global bucket index of `counts[0]`.
    base: usize,
    /// Per-bucket sample counts covering the occupied index range.
    counts: Vec<u64>,
    /// Total number of recorded samples.
    count: u64,
}

/// Global bucket index of a nanosecond value.
fn bucket_index(ns: u64) -> usize {
    if ns < SUB_BUCKETS {
        ns as usize
    } else {
        // The highest set bit picks the octave; the SUB_BUCKET_BITS bits
        // below it pick the linear sub-bucket within the octave.
        let msb = 63 - ns.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        (((shift as u64) << SUB_BUCKET_BITS) + (ns >> shift)) as usize
    }
}

/// Inclusive upper nanosecond edge of a global bucket index.
fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        index
    } else {
        // Invert `bucket_index`: there `index = shift × 64 + (ns >> shift)`
        // with `ns >> shift` in [64, 128), so `index >> 6` lands one past
        // the octave's shift.
        let shift = (index >> SUB_BUCKET_BITS) as u32 - 1;
        let sub = index & (SUB_BUCKETS - 1) | SUB_BUCKETS;
        // Upper edge: everything strictly below the next bucket's floor
        // (the top octave's edge saturates at u64::MAX).
        let edge = (u128::from(sub) + 1) << shift;
        u64::try_from(edge - 1).unwrap_or(u64::MAX)
    }
}

impl ResponseHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        ResponseHistogram::default()
    }

    /// Record one response time of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let index = bucket_index(ns);
        if self.counts.is_empty() {
            self.base = index;
            self.counts.push(0);
        } else if index < self.base {
            // Grow downwards to exactly the new minimum bucket, keeping
            // the representation canonical for the recorded multiset.
            let pad = self.base - index;
            self.counts.splice(0..0, std::iter::repeat_n(0, pad));
            self.base = index;
        } else if index >= self.base + self.counts.len() {
            self.counts.resize(index - self.base + 1, 0);
        }
        self.counts[index - self.base] += 1;
        self.count += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper nanosecond edge of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`), or `None` if the histogram is empty.
    ///
    /// The reported value is the smallest bucket edge below which at least
    /// `ceil(q × count)` samples fall — within one bucket (≤ 1.6%
    /// relative) of the exact order statistic.
    // tidy-allow: float quantile fraction is telemetry input, not a bound
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // tidy-allow: float quantile rank: ratio of deterministic integers
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (offset, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_high(self.base + offset));
            }
        }
        // Unreachable: the loop covers every recorded sample.
        Some(bucket_high(self.base + self.counts.len() - 1))
    }
}

/// Maximum number of raw samples retained when `GMF_SIM_KEEP_SAMPLES` is
/// set.  Percentiles come from the streaming histogram, so retention is a
/// debug aid only; the cap bounds its memory on long-horizon runs.
pub const MAX_KEPT_SAMPLES: usize = 1_000_000;

/// Aggregated statistics of one (flow, GMF frame index) pair.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Number of completed packets observed.
    pub count: u64,
    /// Largest observed response time (exact, not bucketed).
    pub max: Time,
    /// Smallest observed response time (exact, not bucketed).
    pub min: Time,
    /// Sum of response times in integer nanoseconds.  Integer
    /// accumulation is order-independent and drift-free, unlike the raw
    /// float sum it replaced.
    sum_ns: u64,
    /// Streaming log-bucketed distribution of response times.
    pub histogram: ResponseHistogram,
}

impl ResponseStats {
    fn record(&mut self, response: Time) {
        if self.count == 0 {
            self.min = response;
            self.max = response;
        } else {
            self.min = self.min.min(response);
            self.max = self.max.max(response);
        }
        let ns = response_ns(response);
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.histogram.record_ns(ns);
        self.count += 1;
    }

    /// Mean observed response time (zero if nothing was observed).
    pub fn mean(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            // tidy-allow: float telemetry ratio: integer sum over count
            Time::from_nanos(self.sum_ns as f64 / self.count as f64)
        }
    }

    /// The `q`-quantile of the observed response times, reported at its
    /// histogram bucket's upper edge and clamped to the exact maximum
    /// (so `quantile(1.0)` equals [`ResponseStats::max`]).
    // tidy-allow: float quantile fraction is telemetry input, not a bound
    pub fn quantile(&self, q: f64) -> Option<Time> {
        let ns = self.histogram.quantile_ns(q)?;
        // tidy-allow: float telemetry conversion of an integer bucket edge
        Some(Time::from_nanos(ns as f64).min(self.max))
    }

    /// Median observed response time.
    pub fn p50(&self) -> Option<Time> {
        self.quantile(0.50)
    }

    /// 95th percentile of the observed response times.
    pub fn p95(&self) -> Option<Time> {
        self.quantile(0.95)
    }

    /// 99th percentile of the observed response times.
    pub fn p99(&self) -> Option<Time> {
        self.quantile(0.99)
    }
}

/// A response time as integer nanoseconds (rounded to the nearest ns;
/// negative responses cannot occur and clamp to zero).
fn response_ns(response: Time) -> u64 {
    debug_assert!(
        !response.is_negative(),
        "response times are non-negative by construction"
    );
    // tidy-allow: float conversion boundary from Time's f64 seconds
    let ns = response.as_nanos().round();
    // tidy-allow: float conversion boundary from Time's f64 seconds
    if ns <= 0.0 {
        0
    } else {
        ns as u64
    }
}

/// All statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Per (flow, GMF frame index) aggregates.
    per_frame: BTreeMap<(FlowId, usize), ResponseStats>,
    /// Raw samples (kept only when sample recording is enabled).
    samples: Vec<PacketSample>,
    /// Whether raw samples are retained.
    keep_samples: bool,
    /// Number of raw samples dropped after [`MAX_KEPT_SAMPLES`] was hit.
    pub samples_truncated: u64,
    /// Number of packets released at sources.
    pub packets_released: u64,
    /// Number of packets fully received at their destinations.
    pub packets_completed: u64,
    /// Number of Ethernet frames that traversed at least one link.
    pub frames_transmitted: u64,
}

impl SimStats {
    /// Create an empty statistics collector.
    pub fn new(keep_samples: bool) -> Self {
        SimStats {
            keep_samples,
            ..SimStats::default()
        }
    }

    /// Record a completed packet.
    pub fn record(&mut self, sample: PacketSample) {
        self.packets_completed += 1;
        self.per_frame
            .entry((sample.flow, sample.gmf_frame))
            .or_default()
            .record(sample.response_time());
        if self.keep_samples {
            if self.samples.len() < MAX_KEPT_SAMPLES {
                self.samples.push(sample);
            } else {
                if self.samples_truncated == 0 {
                    eprintln!(
                        "warning: GMF_SIM_KEEP_SAMPLES hit the {MAX_KEPT_SAMPLES}-sample \
                         retention cap; further samples are dropped (percentiles still \
                         come from the streaming histogram)"
                    );
                }
                self.samples_truncated += 1;
            }
        }
    }

    /// Aggregates of a specific (flow, GMF frame) pair.
    pub fn frame_stats(&self, flow: FlowId, gmf_frame: usize) -> Option<&ResponseStats> {
        self.per_frame.get(&(flow, gmf_frame))
    }

    /// All aggregates of one flow, keyed by GMF frame index, in frame
    /// order.  A range query on the BTreeMap — O(log n + frames of the
    /// flow), not a scan of every (flow, frame) pair.
    pub fn flow_frames(&self, flow: FlowId) -> impl Iterator<Item = (usize, &ResponseStats)> {
        self.per_frame
            .range((flow, 0)..=(flow, usize::MAX))
            .map(|(&(_, frame), s)| (frame, s))
    }

    /// The worst observed response time of any frame of `flow`.
    pub fn worst_response(&self, flow: FlowId) -> Option<Time> {
        self.flow_frames(flow).map(|(_, s)| s.max).max()
    }

    /// The worst observed response time of a specific GMF frame of `flow`.
    pub fn worst_frame_response(&self, flow: FlowId, gmf_frame: usize) -> Option<Time> {
        self.frame_stats(flow, gmf_frame).map(|s| s.max)
    }

    /// Number of completed packets of `flow`.
    pub fn completed_of_flow(&self, flow: FlowId) -> u64 {
        self.flow_frames(flow).map(|(_, s)| s.count).sum()
    }

    /// All per-(flow, frame) aggregates.
    pub fn per_frame(&self) -> impl Iterator<Item = (&(FlowId, usize), &ResponseStats)> {
        self.per_frame.iter()
    }

    /// Raw samples (empty unless sample recording was enabled; capped at
    /// [`MAX_KEPT_SAMPLES`] — see [`SimStats::samples_truncated`]).
    pub fn samples(&self) -> &[PacketSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        flow: usize,
        seq: u64,
        frame: usize,
        arrival_ms: f64,
        completion_ms: f64,
    ) -> PacketSample {
        PacketSample {
            flow: FlowId(flow),
            sequence: seq,
            gmf_frame: frame,
            arrival: Time::from_millis(arrival_ms),
            completion: Time::from_millis(completion_ms),
        }
    }

    #[test]
    fn response_time_is_completion_minus_arrival() {
        let s = sample(0, 0, 0, 10.0, 14.5);
        assert!(s.response_time().approx_eq(Time::from_millis(4.5)));
    }

    #[test]
    fn aggregates_track_min_max_mean() {
        let mut stats = SimStats::new(true);
        stats.record(sample(0, 0, 0, 0.0, 2.0));
        stats.record(sample(0, 1, 0, 10.0, 16.0));
        stats.record(sample(0, 2, 0, 20.0, 21.0));
        let agg = stats.frame_stats(FlowId(0), 0).unwrap();
        assert_eq!(agg.count, 3);
        assert!(agg.max.approx_eq(Time::from_millis(6.0)));
        assert!(agg.min.approx_eq(Time::from_millis(1.0)));
        assert!(agg.mean().approx_eq(Time::from_millis(3.0)));
        assert_eq!(stats.samples().len(), 3);
        assert_eq!(stats.packets_completed, 3);
    }

    #[test]
    fn per_flow_queries() {
        let mut stats = SimStats::new(false);
        stats.record(sample(0, 0, 0, 0.0, 5.0));
        stats.record(sample(0, 1, 1, 30.0, 32.0));
        stats.record(sample(1, 0, 0, 0.0, 1.0));
        assert!(stats
            .worst_response(FlowId(0))
            .unwrap()
            .approx_eq(Time::from_millis(5.0)));
        assert!(stats
            .worst_frame_response(FlowId(0), 1)
            .unwrap()
            .approx_eq(Time::from_millis(2.0)));
        assert_eq!(stats.worst_frame_response(FlowId(0), 7), None);
        assert_eq!(stats.completed_of_flow(FlowId(0)), 2);
        assert_eq!(stats.completed_of_flow(FlowId(2)), 0);
        assert_eq!(stats.worst_response(FlowId(9)), None);
        // Samples were not kept.
        assert!(stats.samples().is_empty());
        assert_eq!(stats.per_frame().count(), 3);
    }

    /// The range-query fast path must agree with a full scan of the map
    /// (the original implementation) on every flow, including flows that
    /// sort first, last and absent.
    #[test]
    fn range_queries_are_equivalent_to_full_scans() {
        let mut stats = SimStats::new(false);
        let mut seq = 0;
        for flow in [0usize, 1, 2, 5, usize::MAX] {
            for frame in [0usize, 1, 3, usize::MAX] {
                for k in 0..3u64 {
                    stats.record(sample(flow, seq, frame, 0.0, 1.0 + k as f64));
                    seq += 1;
                }
            }
        }
        for flow in [0usize, 1, 2, 3, 5, 7, usize::MAX] {
            let flow = FlowId(flow);
            let scan_worst = stats
                .per_frame()
                .filter(|((f, _), _)| *f == flow)
                .map(|(_, s)| s.max)
                .max();
            let scan_count: u64 = stats
                .per_frame()
                .filter(|((f, _), _)| *f == flow)
                .map(|(_, s)| s.count)
                .sum();
            assert_eq!(stats.worst_response(flow), scan_worst, "{flow:?}");
            assert_eq!(stats.completed_of_flow(flow), scan_count, "{flow:?}");
            let ranged: Vec<usize> = stats.flow_frames(flow).map(|(f, _)| f).collect();
            let scanned: Vec<usize> = stats
                .per_frame()
                .filter(|((f, _), _)| *f == flow)
                .map(|((_, frame), _)| *frame)
                .collect();
            assert_eq!(ranged, scanned, "{flow:?}");
        }
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        let s = ResponseStats::default();
        assert_eq!(s.mean(), Time::ZERO);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), None);
        assert_eq!(s.quantile(1.0), None);
    }

    #[test]
    fn histogram_buckets_are_exact_below_64ns_and_within_one_part_in_64_above() {
        // Unit buckets below SUB_BUCKETS.
        for ns in 0..SUB_BUCKETS {
            assert_eq!(bucket_high(bucket_index(ns)), ns);
        }
        // Above: the bucket's upper edge is within 1/64 of the value.
        for ns in [64u64, 100, 1000, 12_345, 1 << 20, u64::MAX / 3, u64::MAX] {
            let high = bucket_high(bucket_index(ns));
            assert!(high >= ns, "{ns}: upper edge {high} below value");
            assert!(
                high - ns <= ns / SUB_BUCKETS,
                "{ns}: upper edge {high} off by more than 1/64"
            );
        }
        // Bucket indices are monotone in the value.
        let mut prev = 0;
        for ns in (0..200_000u64).step_by(7) {
            let idx = bucket_index(ns);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn histogram_representation_is_order_independent() {
        let values = [5u64, 1_000_000, 64, 77, 12_345_678, 5, 0];
        let mut a = ResponseHistogram::new();
        let mut b = ResponseHistogram::new();
        for &v in &values {
            a.record_ns(v);
        }
        for &v in values.iter().rev() {
            b.record_ns(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.count(), values.len() as u64);
    }

    #[test]
    fn quantiles_clamp_to_the_exact_max() {
        let mut s = ResponseStats::default();
        for ms in [1.0, 2.0, 3.0, 10.0] {
            s.record(Time::from_millis(ms));
        }
        assert_eq!(s.quantile(1.0).unwrap(), s.max);
        assert!(s.p50().unwrap() <= s.max);
        assert!(s.p50().unwrap() >= s.min);
        // P50 of [1,2,3,10] ms is the 2nd sample's bucket: ~2 ms.
        let p50 = s.p50().unwrap();
        assert!(
            p50 >= Time::from_millis(2.0) && p50 <= Time::from_millis(2.0 + 2.0 / 60.0),
            "p50 {p50}"
        );
    }

    /// The drift bugfix: integer-nanosecond accumulation is exact, so the
    /// mean of 10 million identical samples is that sample, not a float
    /// accumulation drifting away from it, and the aggregate equals the
    /// same data summed in any other order.
    #[test]
    fn ten_million_sample_mean_does_not_drift() {
        let response = Time::from_micros(123.4);
        let n: u64 = 10_000_000;
        let mut fwd = ResponseStats::default();
        for _ in 0..n {
            fwd.record(response);
        }
        assert_eq!(fwd.count, n);
        // Exact: the mean of n identical values is the value (to the ns).
        let mean_ns = fwd.mean().as_nanos();
        let expect_ns = response.as_nanos().round();
        assert!(
            (mean_ns - expect_ns).abs() < 1.0,
            "mean {mean_ns} ns drifted from {expect_ns} ns"
        );
        // Order-independence: interleaving a second value front-vs-back
        // produces bit-identical aggregates.
        let lo = Time::from_micros(10.0);
        let hi = Time::from_micros(500.0);
        let mut ab = ResponseStats::default();
        let mut ba = ResponseStats::default();
        for i in 0..100_000 {
            let (x, y) = if i % 2 == 0 { (lo, hi) } else { (hi, lo) };
            ab.record(x);
            ba.record(y);
        }
        for i in 0..100_000 {
            let (x, y) = if i % 2 == 0 { (lo, hi) } else { (hi, lo) };
            ab.record(y);
            ba.record(x);
        }
        assert_eq!(ab, ba);
    }

    use proptest::prelude::*;

    /// Sample values spanning every histogram regime: the exact linear
    /// range below 64 ns, mid-range octaves, and multi-second outliers.
    fn sample_ns() -> impl Strategy<Value = u64> {
        prop_oneof![0u64..SUB_BUCKETS, 0u64..1_000_000, 0u64..30_000_000_000,]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Histogram quantiles agree with a sorted-oracle order statistic
        /// to within one log bucket: the report is never below the exact
        /// value and never past the upper edge of the exact value's bucket.
        #[test]
        fn histogram_quantiles_match_sorted_oracle_within_one_bucket(
            samples in prop::collection::vec(sample_ns(), 1..400)
        ) {
            let mut histogram = ResponseHistogram::new();
            for &ns in &samples {
                histogram.record_ns(ns);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.25, 0.5, 0.95, 0.99, 1.0] {
                let reported = histogram.quantile_ns(q).expect("histogram is non-empty");
                // Same rank rule as `quantile_ns`: the smallest sample with
                // at least ceil(q × n) samples at or below it.
                // tidy-allow: float quantile rank mirrors quantile_ns exactly
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let oracle = sorted[rank - 1];
                prop_assert!(reported >= oracle, "q {q}: {reported} < oracle {oracle}");
                prop_assert_eq!(
                    bucket_index(reported),
                    bucket_index(oracle),
                    "q {}: {} left the oracle's bucket ({})",
                    q,
                    reported,
                    oracle
                );
            }
        }

        /// Bucket arithmetic round-trips: every nanosecond value falls in a
        /// bucket whose inclusive upper edge is the smallest edge at or
        /// above it, and edges are strictly monotone in the index.
        #[test]
        fn bucket_edges_bracket_every_value(ns in sample_ns()) {
            let index = bucket_index(ns);
            prop_assert!(bucket_high(index) >= ns);
            if index > 0 {
                prop_assert!(bucket_high(index - 1) < ns);
            }
        }
    }

    #[test]
    fn sample_retention_caps_loudly() {
        let mut stats = SimStats::new(true);
        // Synthetic: pretend the cap is hit by filling to it directly.
        stats.samples = vec![sample(0, 0, 0, 0.0, 1.0); MAX_KEPT_SAMPLES];
        stats.record(sample(0, 1, 0, 0.0, 1.0));
        assert_eq!(stats.samples().len(), MAX_KEPT_SAMPLES);
        assert_eq!(stats.samples_truncated, 1);
        // Aggregates still see the dropped sample.
        assert_eq!(stats.packets_completed, 1);
    }
}
