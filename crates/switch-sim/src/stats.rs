//! Response-time statistics collected by the simulator.

use gmf_model::{FlowId, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One completed packet observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSample {
    /// The flow the packet belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub sequence: u64,
    /// GMF frame index the packet instantiates.
    pub gmf_frame: usize,
    /// Arrival time of the packet at its source.
    pub arrival: Time,
    /// Time at which the last Ethernet frame of the packet reached the
    /// destination.
    pub completion: Time,
}

impl PacketSample {
    /// End-to-end response time of the packet.
    pub fn response_time(&self) -> Time {
        self.completion - self.arrival
    }
}

/// Aggregated statistics of one (flow, GMF frame index) pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Number of completed packets observed.
    pub count: u64,
    /// Largest observed response time.
    pub max: Time,
    /// Smallest observed response time.
    pub min: Time,
    /// Sum of response times (for the mean).
    sum: Time,
}

impl ResponseStats {
    fn record(&mut self, response: Time) {
        if self.count == 0 {
            self.min = response;
            self.max = response;
        } else {
            self.min = self.min.min(response);
            self.max = self.max.max(response);
        }
        self.sum += response;
        self.count += 1;
    }

    /// Mean observed response time (zero if nothing was observed).
    pub fn mean(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            self.sum / self.count as f64
        }
    }
}

/// All statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Per (flow, GMF frame index) aggregates.
    per_frame: BTreeMap<(FlowId, usize), ResponseStats>,
    /// Raw samples (kept only when sample recording is enabled).
    samples: Vec<PacketSample>,
    /// Whether raw samples are retained.
    keep_samples: bool,
    /// Number of packets released at sources.
    pub packets_released: u64,
    /// Number of packets fully received at their destinations.
    pub packets_completed: u64,
    /// Number of Ethernet frames that traversed at least one link.
    pub frames_transmitted: u64,
}

impl SimStats {
    /// Create an empty statistics collector.
    pub fn new(keep_samples: bool) -> Self {
        SimStats {
            keep_samples,
            ..SimStats::default()
        }
    }

    /// Record a completed packet.
    pub fn record(&mut self, sample: PacketSample) {
        self.packets_completed += 1;
        self.per_frame
            .entry((sample.flow, sample.gmf_frame))
            .or_default()
            .record(sample.response_time());
        if self.keep_samples {
            self.samples.push(sample);
        }
    }

    /// Aggregates of a specific (flow, GMF frame) pair.
    pub fn frame_stats(&self, flow: FlowId, gmf_frame: usize) -> Option<&ResponseStats> {
        self.per_frame.get(&(flow, gmf_frame))
    }

    /// The worst observed response time of any frame of `flow`.
    pub fn worst_response(&self, flow: FlowId) -> Option<Time> {
        self.per_frame
            .iter()
            .filter(|((f, _), _)| *f == flow)
            .map(|(_, s)| s.max)
            .max()
    }

    /// The worst observed response time of a specific GMF frame of `flow`.
    pub fn worst_frame_response(&self, flow: FlowId, gmf_frame: usize) -> Option<Time> {
        self.frame_stats(flow, gmf_frame).map(|s| s.max)
    }

    /// Number of completed packets of `flow`.
    pub fn completed_of_flow(&self, flow: FlowId) -> u64 {
        self.per_frame
            .iter()
            .filter(|((f, _), _)| *f == flow)
            .map(|(_, s)| s.count)
            .sum()
    }

    /// All per-(flow, frame) aggregates.
    pub fn per_frame(&self) -> impl Iterator<Item = (&(FlowId, usize), &ResponseStats)> {
        self.per_frame.iter()
    }

    /// Raw samples (empty unless sample recording was enabled).
    pub fn samples(&self) -> &[PacketSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        flow: usize,
        seq: u64,
        frame: usize,
        arrival_ms: f64,
        completion_ms: f64,
    ) -> PacketSample {
        PacketSample {
            flow: FlowId(flow),
            sequence: seq,
            gmf_frame: frame,
            arrival: Time::from_millis(arrival_ms),
            completion: Time::from_millis(completion_ms),
        }
    }

    #[test]
    fn response_time_is_completion_minus_arrival() {
        let s = sample(0, 0, 0, 10.0, 14.5);
        assert!(s.response_time().approx_eq(Time::from_millis(4.5)));
    }

    #[test]
    fn aggregates_track_min_max_mean() {
        let mut stats = SimStats::new(true);
        stats.record(sample(0, 0, 0, 0.0, 2.0));
        stats.record(sample(0, 1, 0, 10.0, 16.0));
        stats.record(sample(0, 2, 0, 20.0, 21.0));
        let agg = stats.frame_stats(FlowId(0), 0).unwrap();
        assert_eq!(agg.count, 3);
        assert!(agg.max.approx_eq(Time::from_millis(6.0)));
        assert!(agg.min.approx_eq(Time::from_millis(1.0)));
        assert!(agg.mean().approx_eq(Time::from_millis(3.0)));
        assert_eq!(stats.samples().len(), 3);
        assert_eq!(stats.packets_completed, 3);
    }

    #[test]
    fn per_flow_queries() {
        let mut stats = SimStats::new(false);
        stats.record(sample(0, 0, 0, 0.0, 5.0));
        stats.record(sample(0, 1, 1, 30.0, 32.0));
        stats.record(sample(1, 0, 0, 0.0, 1.0));
        assert!(stats
            .worst_response(FlowId(0))
            .unwrap()
            .approx_eq(Time::from_millis(5.0)));
        assert!(stats
            .worst_frame_response(FlowId(0), 1)
            .unwrap()
            .approx_eq(Time::from_millis(2.0)));
        assert_eq!(stats.worst_frame_response(FlowId(0), 7), None);
        assert_eq!(stats.completed_of_flow(FlowId(0)), 2);
        assert_eq!(stats.completed_of_flow(FlowId(2)), 0);
        assert_eq!(stats.worst_response(FlowId(9)), None);
        // Samples were not kept.
        assert!(stats.samples().is_empty());
        assert_eq!(stats.per_frame().count(), 3);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        let s = ResponseStats::default();
        assert_eq!(s.mean(), Time::ZERO);
        assert_eq!(s.count, 0);
    }
}
