//! Per-node simulation state: end hosts / routers and software switches.
//!
//! Node state is **port-indexed**: each node resolves its sorted neighbour
//! list to a dense port index once, and every queue, NIC slot and CPU task
//! is a flat array indexed by that port.  The event loop touches these
//! structures millions of times per simulated second, so flat arrays (one
//! binary search over a small sorted `Vec<NodeId>` at the boundary, plain
//! indexing after that) beat per-access `BTreeMap` walks by a wide margin.

use crate::packet::EthFrame;
use crate::stride::StrideScheduler;
use gmf_model::Time;
use gmf_net::{NodeId, Priority, SwitchConfig};
use std::collections::VecDeque;

/// Number of 802.1p priority levels of an output queue.
pub const N_PRIORITY_LEVELS: usize = 8;

/// A prioritized output queue: one FIFO per 802.1p priority level.
#[derive(Debug, Clone, Default)]
pub struct PriorityQueue {
    levels: [VecDeque<EthFrame>; N_PRIORITY_LEVELS],
    /// Bit `i` set iff `levels[i]` is non-empty; the highest set bit is the
    /// level `pop_highest` serves, so emptiness checks and pops are O(1)
    /// instead of an eight-FIFO scan on the dispatch hot path.
    occupied: u8,
    /// Total queued frames.
    len: usize,
}

impl PriorityQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        PriorityQueue::default()
    }

    /// Enqueue a frame at its priority level.
    pub fn push(&mut self, frame: EthFrame) {
        let level = (frame.priority.0 as usize).min(N_PRIORITY_LEVELS - 1);
        self.levels[level].push_back(frame);
        self.occupied |= 1 << level;
        self.len += 1;
    }

    /// Dequeue the oldest frame of the highest non-empty priority level.
    pub fn pop_highest(&mut self) -> Option<EthFrame> {
        if self.occupied == 0 {
            return None;
        }
        let level = (7 - self.occupied.leading_zeros()) as usize;
        let frame = self.levels[level].pop_front();
        debug_assert!(frame.is_some(), "occupied bit set on an empty level");
        if self.levels[level].is_empty() {
            self.occupied &= !(1 << level);
        }
        self.len -= frame.is_some() as usize;
        frame
    }

    /// Total number of queued frames.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Number of frames queued at priorities strictly above `priority`.
    pub fn queued_above(&self, priority: Priority) -> usize {
        self.levels
            .iter()
            .enumerate()
            .filter(|(level, _)| *level > priority.0 as usize)
            .map(|(_, q)| q.len())
            .sum()
    }
}

/// Resolve a neighbour to its port index in a sorted port table.
fn port_of(ports: &[NodeId], neighbour: NodeId) -> Option<usize> {
    ports.binary_search(&neighbour).ok()
}

/// State of an end host or IP router (a traffic endpoint).
#[derive(Debug, Clone, Default)]
pub struct EndpointState {
    /// Sorted outgoing neighbours; the index is the port number.
    ports: Vec<NodeId>,
    /// Work-conserving FIFO output queue per port.
    pub out_queues: Vec<VecDeque<EthFrame>>,
    /// Frame currently being serialised towards each port's neighbour.
    pub tx_in_flight: Vec<Option<EthFrame>>,
}

impl EndpointState {
    /// Build the state of an endpoint with the given outgoing neighbours.
    pub fn new(neighbours: &[NodeId]) -> Self {
        let mut ports = neighbours.to_vec();
        ports.sort_unstable();
        ports.dedup();
        let n = ports.len();
        EndpointState {
            ports,
            out_queues: vec![VecDeque::new(); n],
            tx_in_flight: vec![None; n],
        }
    }

    /// Port index of the given neighbour.
    pub fn port_of(&self, neighbour: NodeId) -> Option<usize> {
        port_of(&self.ports, neighbour)
    }

    /// `true` if the NIC of `port` is currently transmitting.
    pub fn is_transmitting(&self, port: usize) -> bool {
        self.tx_in_flight[port].is_some()
    }
}

/// A task of the switch CPU, referencing the interface it serves by port
/// index (see [`SwitchState::neighbour`] for the reverse mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchTask {
    /// The routing task of the input interface at `port`.
    Route {
        /// Port whose incoming frames this task processes.
        port: usize,
    },
    /// The send task of the output interface at `port`.
    Send {
        /// Port this task feeds frames towards.
        port: usize,
    },
}

/// A deferred task effect that is applied when the task's execution
/// completes (the CPU is non-preemptive, so effects become visible only at
/// the end of the task's time slice).
#[derive(Debug, Clone)]
pub enum PendingCompletion {
    /// A routing task finished classifying `frame`; it goes to the priority
    /// queue of the output interface at `port`.
    RouteDone {
        /// Output port.
        port: usize,
        /// The classified frame.
        frame: EthFrame,
    },
    /// A send task finished handing `frame` to the NIC at `port`;
    /// transmission starts now.
    SendDone {
        /// Output port.
        port: usize,
        /// The frame to transmit.
        frame: EthFrame,
    },
}

/// State of a software Ethernet switch.
#[derive(Debug, Clone)]
pub struct SwitchState {
    /// Sorted neighbour list; the index is the port number.
    pub(crate) ports: Vec<NodeId>,
    /// Input FIFO of each port.
    pub inputs: Vec<VecDeque<EthFrame>>,
    /// Prioritized output queue of each port.
    pub outputs: Vec<PriorityQueue>,
    /// Frame currently being serialised by each port's output NIC.
    pub nic_in_flight: Vec<Option<EthFrame>>,
    /// The stride scheduler over `tasks`.
    pub scheduler: StrideScheduler,
    /// Task table, index-aligned with the scheduler.
    pub tasks: Vec<SwitchTask>,
    /// Whether the CPU currently has a dispatch event in flight.
    pub cpu_busy: bool,
    /// Effect of the task whose execution ends at the next dispatch event.
    pub pending: Option<PendingCompletion>,
    /// `CROUTE(N)` of this switch.
    pub croute: Time,
    /// `CSEND(N)` of this switch.
    pub csend: Time,
    /// Total frames across all input FIFOs.  Maintained by the
    /// enqueue/dequeue helpers so `has_any_work` is O(1).
    pub(crate) input_frames: usize,
    /// Number of ports whose NIC is idle and whose output queue is
    /// non-empty (downed cables are not subtracted, matching the
    /// wake-on-any-buffered-frame behaviour `has_any_work` always had).
    pub(crate) sendable_ports: usize,
}

impl SwitchState {
    /// Build the state of a switch with the given neighbours (interfaces).
    ///
    /// Task registration order follows the sorted neighbour list, one
    /// routing task and one send task per interface — matching the paper's
    /// `CIRC(N) = NINTERFACES × (CROUTE + CSEND)` round length when every
    /// task is busy.
    pub fn new(config: &SwitchConfig, neighbours: &[NodeId]) -> Self {
        let mut ports = neighbours.to_vec();
        ports.sort_unstable();
        ports.dedup();

        let n = ports.len();
        let mut scheduler = StrideScheduler::new();
        let mut tasks = Vec::with_capacity(2 * n);
        for port in 0..n {
            scheduler.add_task(1);
            tasks.push(SwitchTask::Route { port });
            scheduler.add_task(1);
            tasks.push(SwitchTask::Send { port });
        }
        SwitchState {
            ports,
            inputs: vec![VecDeque::new(); n],
            outputs: vec![PriorityQueue::new(); n],
            nic_in_flight: vec![None; n],
            scheduler,
            tasks,
            cpu_busy: false,
            pending: None,
            croute: config.croute,
            csend: config.csend,
            input_frames: 0,
            sendable_ports: 0,
        }
    }

    /// Append a frame to a port's input FIFO.
    pub fn enqueue_input(&mut self, port: usize, frame: EthFrame) {
        self.inputs[port].push_back(frame);
        self.input_frames += 1;
    }

    /// Push a classified frame onto a port's output queue.
    pub fn enqueue_output(&mut self, port: usize, frame: EthFrame) {
        if self.nic_in_flight[port].is_none() && self.outputs[port].is_empty() {
            self.sendable_ports += 1;
        }
        self.outputs[port].push(frame);
    }

    /// Hand a frame to a port's NIC; the NIC must be idle.
    pub fn nic_load(&mut self, port: usize, frame: EthFrame) {
        debug_assert!(
            self.nic_in_flight[port].is_none(),
            "send task only runs when the NIC is idle"
        );
        if !self.outputs[port].is_empty() {
            self.sendable_ports -= 1;
        }
        self.nic_in_flight[port] = Some(frame);
    }

    /// Take the frame a port's NIC just finished transmitting.
    pub fn nic_unload(&mut self, port: usize) -> Option<EthFrame> {
        let frame = self.nic_in_flight[port].take();
        if frame.is_some() && !self.outputs[port].is_empty() {
            self.sendable_ports += 1;
        }
        frame
    }

    /// Number of interfaces (ports).
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Port index of the given neighbour.
    pub fn port_of(&self, neighbour: NodeId) -> Option<usize> {
        port_of(&self.ports, neighbour)
    }

    /// The neighbour an interface port faces.
    pub fn neighbour(&self, port: usize) -> NodeId {
        self.ports[port]
    }

    /// `true` if the NIC of `port` is currently transmitting.
    pub fn nic_busy(&self, port: usize) -> bool {
        self.nic_in_flight[port].is_some()
    }

    /// `true` if the given task currently has useful work to do.
    pub fn task_has_work(&self, task: SwitchTask) -> bool {
        match task {
            SwitchTask::Route { port } => !self.inputs[port].is_empty(),
            SwitchTask::Send { port } => !self.nic_busy(port) && !self.outputs[port].is_empty(),
        }
    }

    /// `true` if any task has useful work to do.  O(1): reads the counters
    /// the mutation helpers maintain instead of scanning every port.
    pub fn has_any_work(&self) -> bool {
        debug_assert_eq!(
            self.input_frames,
            self.inputs.iter().map(|q| q.len()).sum::<usize>(),
            "input_frames counter out of sync"
        );
        debug_assert_eq!(
            self.sendable_ports,
            self.outputs
                .iter()
                .zip(&self.nic_in_flight)
                .filter(|(q, nic)| nic.is_none() && !q.is_empty())
                .count(),
            "sendable_ports counter out of sync"
        );
        self.input_frames > 0 || self.sendable_ports > 0
    }

    /// Total number of frames buffered anywhere in the switch.
    pub fn buffered_frames(&self) -> usize {
        self.inputs.iter().map(|q| q.len()).sum::<usize>()
            + self.outputs.iter().map(|q| q.len()).sum::<usize>()
            + self.nic_in_flight.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use gmf_model::{Bits, FlowId};

    fn frame(priority: u8, seq: u64) -> EthFrame {
        EthFrame {
            packet: PacketId {
                flow: FlowId(0),
                sequence: seq,
            },
            gmf_frame: 0,
            fragment: 0,
            n_fragments: 1,
            wire_bits: Bits::from_bits(12304),
            priority: Priority(priority),
            packet_arrival: Time::ZERO,
        }
    }

    #[test]
    fn priority_queue_orders_by_priority_then_fifo() {
        let mut q = PriorityQueue::new();
        assert!(q.is_empty());
        q.push(frame(1, 0));
        q.push(frame(7, 1));
        q.push(frame(1, 2));
        q.push(frame(5, 3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.queued_above(Priority(4)), 2);
        assert_eq!(q.queued_above(Priority(7)), 0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_highest())
            .map(|f| f.packet.sequence)
            .collect();
        // Highest priority first; equal priorities keep FIFO order.
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn priority_queue_clamps_out_of_range_priorities() {
        let mut q = PriorityQueue::new();
        q.push(frame(200, 0));
        assert_eq!(q.queued_above(Priority(6)), 1);
        assert!(q.pop_highest().is_some());
    }

    #[test]
    fn switch_state_builds_tasks_per_interface() {
        let cfg = SwitchConfig::paper();
        let neighbours = vec![NodeId(3), NodeId(1), NodeId(5), NodeId(1)];
        let s = SwitchState::new(&cfg, &neighbours);
        // Duplicates removed: 3 interfaces => 6 tasks.
        assert_eq!(s.tasks.len(), 6);
        assert_eq!(s.scheduler.n_tasks(), 6);
        assert_eq!(s.n_ports(), 3);
        assert!(!s.cpu_busy);
        assert!(!s.has_any_work());
        assert_eq!(s.buffered_frames(), 0);
        // Interfaces come in sorted order, route task before send task.
        assert_eq!(s.neighbour(0), NodeId(1));
        assert_eq!(s.neighbour(2), NodeId(5));
        assert_eq!(s.port_of(NodeId(3)), Some(1));
        assert_eq!(s.port_of(NodeId(4)), None);
        assert_eq!(s.tasks[0], SwitchTask::Route { port: 0 });
        assert_eq!(s.tasks[1], SwitchTask::Send { port: 0 });
        assert_eq!(s.tasks[4], SwitchTask::Route { port: 2 });
    }

    #[test]
    fn task_work_detection() {
        let cfg = SwitchConfig::paper();
        let mut s = SwitchState::new(&cfg, &[NodeId(1), NodeId(2)]);
        assert!(!s.task_has_work(SwitchTask::Route { port: 0 }));
        s.enqueue_input(0, frame(5, 0));
        assert!(s.task_has_work(SwitchTask::Route { port: 0 }));
        assert!(s.has_any_work());
        assert_eq!(s.buffered_frames(), 1);

        assert!(!s.task_has_work(SwitchTask::Send { port: 1 }));
        s.enqueue_output(1, frame(5, 1));
        assert!(s.task_has_work(SwitchTask::Send { port: 1 }));
        // A busy NIC suppresses the send task's work.
        s.nic_load(1, frame(5, 2));
        assert!(!s.task_has_work(SwitchTask::Send { port: 1 }));
        assert!(s.nic_busy(1));
        assert_eq!(s.buffered_frames(), 3);
        // Unloading the NIC makes the queued frame sendable again.
        assert!(s.nic_unload(1).is_some());
        assert!(s.task_has_work(SwitchTask::Send { port: 1 }));
        assert!(s.has_any_work());
    }

    #[test]
    fn endpoint_state_transmission_flag() {
        let mut e = EndpointState::new(&[NodeId(1)]);
        let port = e.port_of(NodeId(1)).unwrap();
        assert!(!e.is_transmitting(port));
        e.tx_in_flight[port] = Some(frame(5, 0));
        assert!(e.is_transmitting(port));
        e.tx_in_flight[port] = None;
        assert!(!e.is_transmitting(port));
        assert_eq!(e.port_of(NodeId(9)), None);
    }
}
