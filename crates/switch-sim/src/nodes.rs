//! Per-node simulation state: end hosts / routers and software switches.

use crate::packet::EthFrame;
use crate::stride::StrideScheduler;
use gmf_model::Time;
use gmf_net::{NodeId, Priority, SwitchConfig};
use std::collections::{BTreeMap, VecDeque};

/// Number of 802.1p priority levels of an output queue.
pub const N_PRIORITY_LEVELS: usize = 8;

/// A prioritized output queue: one FIFO per 802.1p priority level.
#[derive(Debug, Clone, Default)]
pub struct PriorityQueue {
    levels: [VecDeque<EthFrame>; N_PRIORITY_LEVELS],
}

impl PriorityQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        PriorityQueue::default()
    }

    /// Enqueue a frame at its priority level.
    pub fn push(&mut self, frame: EthFrame) {
        let level = (frame.priority.0 as usize).min(N_PRIORITY_LEVELS - 1);
        self.levels[level].push_back(frame);
    }

    /// Dequeue the oldest frame of the highest non-empty priority level.
    pub fn pop_highest(&mut self) -> Option<EthFrame> {
        for level in (0..N_PRIORITY_LEVELS).rev() {
            if let Some(frame) = self.levels[level].pop_front() {
                return Some(frame);
            }
        }
        None
    }

    /// Total number of queued frames.
    pub fn len(&self) -> usize {
        self.levels.iter().map(|q| q.len()).sum()
    }

    /// `true` if no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(|q| q.is_empty())
    }

    /// Number of frames queued at priorities strictly above `priority`.
    pub fn queued_above(&self, priority: Priority) -> usize {
        self.levels
            .iter()
            .enumerate()
            .filter(|(level, _)| *level > priority.0 as usize)
            .map(|(_, q)| q.len())
            .sum()
    }
}

/// State of an end host or IP router (a traffic endpoint).
#[derive(Debug, Clone, Default)]
pub struct EndpointState {
    /// Work-conserving FIFO output queue per outgoing neighbour.
    pub out_queues: BTreeMap<NodeId, VecDeque<EthFrame>>,
    /// Frame currently being serialised towards each neighbour.
    pub tx_in_flight: BTreeMap<NodeId, Option<EthFrame>>,
}

impl EndpointState {
    /// `true` if the NIC towards `to` is currently transmitting.
    pub fn is_transmitting(&self, to: NodeId) -> bool {
        matches!(self.tx_in_flight.get(&to), Some(Some(_)))
    }
}

/// A task of the switch CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchTask {
    /// The routing task of the input interface facing `from`.
    Route {
        /// The neighbour whose incoming frames this task processes.
        from: NodeId,
    },
    /// The send task of the output interface facing `to`.
    Send {
        /// The neighbour this task feeds frames towards.
        to: NodeId,
    },
}

/// A deferred task effect that is applied when the task's execution
/// completes (the CPU is non-preemptive, so effects become visible only at
/// the end of the task's time slice).
#[derive(Debug, Clone)]
pub enum PendingCompletion {
    /// A routing task finished classifying `frame`; it goes to the priority
    /// queue of the interface facing `to`.
    RouteDone {
        /// Output interface.
        to: NodeId,
        /// The classified frame.
        frame: EthFrame,
    },
    /// A send task finished handing `frame` to the NIC facing `to`;
    /// transmission starts now.
    SendDone {
        /// Output interface.
        to: NodeId,
        /// The frame to transmit.
        frame: EthFrame,
    },
}

/// State of a software Ethernet switch.
#[derive(Debug, Clone)]
pub struct SwitchState {
    /// Input FIFO of each interface, keyed by the neighbour it faces.
    pub inputs: BTreeMap<NodeId, VecDeque<EthFrame>>,
    /// Prioritized output queue of each interface.
    pub outputs: BTreeMap<NodeId, PriorityQueue>,
    /// Frame currently being serialised by each output NIC.
    pub nic_in_flight: BTreeMap<NodeId, Option<EthFrame>>,
    /// The stride scheduler over `tasks`.
    pub scheduler: StrideScheduler,
    /// Task table, index-aligned with the scheduler.
    pub tasks: Vec<SwitchTask>,
    /// Whether the CPU currently has a dispatch event in flight.
    pub cpu_busy: bool,
    /// Effect of the task whose execution ends at the next dispatch event.
    pub pending: Option<PendingCompletion>,
    /// `CROUTE(N)` of this switch.
    pub croute: Time,
    /// `CSEND(N)` of this switch.
    pub csend: Time,
}

impl SwitchState {
    /// Build the state of a switch with the given neighbours (interfaces).
    ///
    /// Task registration order follows the sorted neighbour list, one
    /// routing task and one send task per interface — matching the paper's
    /// `CIRC(N) = NINTERFACES × (CROUTE + CSEND)` round length when every
    /// task is busy.
    pub fn new(config: &SwitchConfig, neighbours: &[NodeId]) -> Self {
        let mut sorted = neighbours.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut scheduler = StrideScheduler::new();
        let mut tasks = Vec::new();
        let mut inputs = BTreeMap::new();
        let mut outputs = BTreeMap::new();
        let mut nic_in_flight = BTreeMap::new();
        for &n in &sorted {
            scheduler.add_task(1);
            tasks.push(SwitchTask::Route { from: n });
            scheduler.add_task(1);
            tasks.push(SwitchTask::Send { to: n });
            inputs.insert(n, VecDeque::new());
            outputs.insert(n, PriorityQueue::new());
            nic_in_flight.insert(n, None);
        }
        SwitchState {
            inputs,
            outputs,
            nic_in_flight,
            scheduler,
            tasks,
            cpu_busy: false,
            pending: None,
            croute: config.croute,
            csend: config.csend,
        }
    }

    /// `true` if the NIC towards `to` is currently transmitting.
    pub fn nic_busy(&self, to: NodeId) -> bool {
        matches!(self.nic_in_flight.get(&to), Some(Some(_)))
    }

    /// `true` if the given task currently has useful work to do.
    pub fn task_has_work(&self, task: SwitchTask) -> bool {
        match task {
            SwitchTask::Route { from } => self.inputs.get(&from).is_some_and(|q| !q.is_empty()),
            SwitchTask::Send { to } => {
                !self.nic_busy(to) && self.outputs.get(&to).is_some_and(|q| !q.is_empty())
            }
        }
    }

    /// `true` if any task has useful work to do.
    pub fn has_any_work(&self) -> bool {
        self.tasks.iter().any(|&t| self.task_has_work(t))
    }

    /// Total number of frames buffered anywhere in the switch.
    pub fn buffered_frames(&self) -> usize {
        self.inputs.values().map(|q| q.len()).sum::<usize>()
            + self.outputs.values().map(|q| q.len()).sum::<usize>()
            + self.nic_in_flight.values().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use gmf_model::{Bits, FlowId};

    fn frame(priority: u8, seq: u64) -> EthFrame {
        EthFrame {
            packet: PacketId {
                flow: FlowId(0),
                sequence: seq,
            },
            gmf_frame: 0,
            fragment: 0,
            n_fragments: 1,
            wire_bits: Bits::from_bits(12304),
            priority: Priority(priority),
            packet_arrival: Time::ZERO,
        }
    }

    #[test]
    fn priority_queue_orders_by_priority_then_fifo() {
        let mut q = PriorityQueue::new();
        assert!(q.is_empty());
        q.push(frame(1, 0));
        q.push(frame(7, 1));
        q.push(frame(1, 2));
        q.push(frame(5, 3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.queued_above(Priority(4)), 2);
        assert_eq!(q.queued_above(Priority(7)), 0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_highest())
            .map(|f| f.packet.sequence)
            .collect();
        // Highest priority first; equal priorities keep FIFO order.
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn priority_queue_clamps_out_of_range_priorities() {
        let mut q = PriorityQueue::new();
        q.push(frame(200, 0));
        assert_eq!(q.queued_above(Priority(6)), 1);
        assert!(q.pop_highest().is_some());
    }

    #[test]
    fn switch_state_builds_tasks_per_interface() {
        let cfg = SwitchConfig::paper();
        let neighbours = vec![NodeId(3), NodeId(1), NodeId(5), NodeId(1)];
        let s = SwitchState::new(&cfg, &neighbours);
        // Duplicates removed: 3 interfaces => 6 tasks.
        assert_eq!(s.tasks.len(), 6);
        assert_eq!(s.scheduler.n_tasks(), 6);
        assert_eq!(s.inputs.len(), 3);
        assert_eq!(s.outputs.len(), 3);
        assert!(!s.cpu_busy);
        assert!(!s.has_any_work());
        assert_eq!(s.buffered_frames(), 0);
        // Interfaces come in sorted order, route task before send task.
        assert_eq!(s.tasks[0], SwitchTask::Route { from: NodeId(1) });
        assert_eq!(s.tasks[1], SwitchTask::Send { to: NodeId(1) });
        assert_eq!(s.tasks[4], SwitchTask::Route { from: NodeId(5) });
    }

    #[test]
    fn task_work_detection() {
        let cfg = SwitchConfig::paper();
        let mut s = SwitchState::new(&cfg, &[NodeId(1), NodeId(2)]);
        assert!(!s.task_has_work(SwitchTask::Route { from: NodeId(1) }));
        s.inputs.get_mut(&NodeId(1)).unwrap().push_back(frame(5, 0));
        assert!(s.task_has_work(SwitchTask::Route { from: NodeId(1) }));
        assert!(s.has_any_work());
        assert_eq!(s.buffered_frames(), 1);

        assert!(!s.task_has_work(SwitchTask::Send { to: NodeId(2) }));
        s.outputs.get_mut(&NodeId(2)).unwrap().push(frame(5, 1));
        assert!(s.task_has_work(SwitchTask::Send { to: NodeId(2) }));
        // A busy NIC suppresses the send task's work.
        *s.nic_in_flight.get_mut(&NodeId(2)).unwrap() = Some(frame(5, 2));
        assert!(!s.task_has_work(SwitchTask::Send { to: NodeId(2) }));
        assert!(s.nic_busy(NodeId(2)));
        assert_eq!(s.buffered_frames(), 3);
    }

    #[test]
    fn endpoint_state_transmission_flag() {
        let mut e = EndpointState::default();
        assert!(!e.is_transmitting(NodeId(1)));
        e.tx_in_flight.insert(NodeId(1), Some(frame(5, 0)));
        assert!(e.is_transmitting(NodeId(1)));
        e.tx_in_flight.insert(NodeId(1), None);
        assert!(!e.is_transmitting(NodeId(1)));
    }
}
