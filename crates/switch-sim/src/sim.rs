//! The discrete-event simulation engine.
//!
//! The simulator reproduces, in software, the system the paper analyses
//! (and measured with its Click prototype):
//!
//! * **source hosts** release UDP packets according to their flow's GMF
//!   specification, fragment them into Ethernet frames, spread the frames
//!   over the generalized-jitter window and transmit them from a
//!   work-conserving FIFO output queue;
//! * **software switches** (Figure 5) receive frames into per-interface
//!   input FIFOs; a single CPU runs one routing task per input interface
//!   and one send task per output interface under non-preemptive
//!   round-robin stride scheduling with per-frame costs `CROUTE` and
//!   `CSEND`; classified frames wait in per-output 802.1p priority queues;
//!   the send task refills an idle output NIC, which then serialises the
//!   frame onto the link;
//! * **links** add serialisation time (wire bits / link speed) and
//!   propagation delay;
//! * **destinations** reassemble packets and record the end-to-end response
//!   time of each one (arrival at the source → reception of the last
//!   Ethernet frame).
//!
//! Traffic is generated **lazily**: each flow keeps a cursor holding only
//! its next packet's release time, and packets materialise into the event
//! queue just before the simulation clock reaches them.  The pending event
//! set therefore stays proportional to the *in-flight* traffic, not the
//! whole horizon — the upfront O(horizon) heap of the original engine is
//! gone, which is what makes long-horizon percentile telemetry (E17)
//! affordable.  Arrival cursors are merged with the event queue through a
//! small (release, flow) min-heap, so materialisation order — and with it
//! the (time, insertion-sequence) pop order — is fully deterministic.
//!
//! The simulator is deterministic for a given [`SimConfig`]: every random
//! policy draws from a per-flow `ChaCha8` stream derived from the master
//! seed (`gmf_par::derive_seed`), and simultaneous events fire in
//! insertion order.  Runs are exactly reproducible for a given seed.

use crate::config::{ArrivalPolicy, JitterSpread, SimConfig};
use crate::event::{EventInPast, EventKind, EventQueue, QueueShape};
use crate::faults::{cable, FaultKind, FaultScript};
use crate::nodes::{EndpointState, PendingCompletion, SwitchState, SwitchTask};
use crate::packet::{EthFrame, PacketId};
use crate::stats::{PacketSample, SimStats};
use gmf_model::{packetize, BitRate, Bits, FlowId, Time};
use gmf_net::{FlowSet, NetError, NodeId, Priority, Topology};
use gmf_par::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// Hard cap on processed events, protecting against configuration mistakes
/// (e.g. an overloaded network simulated for a very long horizon).
const MAX_EVENTS: u64 = 200_000_000;

/// Sentinel in the flat forwarding tables: this switch does not route the
/// flow.
const NO_PORT: u32 = u32::MAX;

/// Errors raised while setting up or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A flow originates or terminates at an Ethernet switch.
    EndpointIsSwitch(NodeId),
    /// The flow set does not match the topology.
    Net(NetError),
    /// The event cap was exceeded (runaway simulation).
    EventLimitExceeded,
    /// A fault script references missing hardware or toggles link state
    /// inconsistently.
    InvalidFaultScript(String),
    /// An event was scheduled before the simulation clock (negative times
    /// included) — the deterministic pop order could not be honoured.
    EventInPast {
        /// The requested (invalid) firing time.
        at: Time,
        /// The simulation clock at the attempt.
        now: Time,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EndpointIsSwitch(n) => {
                write!(f, "flow endpoint {n} is an Ethernet switch; only end hosts and routers can source or sink flows")
            }
            SimError::Net(e) => write!(f, "network error: {e}"),
            SimError::EventLimitExceeded => write!(f, "event limit exceeded"),
            SimError::InvalidFaultScript(detail) => {
                write!(f, "invalid fault script: {detail}")
            }
            SimError::EventInPast { at, now } => {
                write!(
                    f,
                    "event scheduled in the past: at {at} with simulation time already at {now}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<NetError> for SimError {
    fn from(e: NetError) -> Self {
        SimError::Net(e)
    }
}

impl From<EventInPast> for SimError {
    fn from(e: EventInPast) -> Self {
        SimError::EventInPast {
            at: e.at,
            now: e.now,
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Response-time statistics.
    pub stats: SimStats,
    /// Number of events processed.
    pub events_processed: u64,
    /// Simulated time of the last event (all traffic drained).
    pub final_time: Time,
    /// Shape counters of the event queue (see [`QueueShape`]): with lazy
    /// generation, `max_pending` tracks in-flight traffic, not horizon
    /// length.
    pub queue: QueueShape,
}

/// A configured simulator, ready to run.
pub struct Simulator<'a> {
    topology: &'a Topology,
    flows: &'a FlowSet,
    config: SimConfig,
    faults: FaultScript,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for `flows` on `topology`.
    pub fn new(
        topology: &'a Topology,
        flows: &'a FlowSet,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        Simulator::with_faults(topology, flows, config, FaultScript::empty())
    }

    /// Create a simulator that additionally injects the scripted faults
    /// mid-run (see [`crate::faults`]).
    pub fn with_faults(
        topology: &'a Topology,
        flows: &'a FlowSet,
        config: SimConfig,
        faults: FaultScript,
    ) -> Result<Self, SimError> {
        flows.validate_against(topology)?;
        for binding in flows.bindings() {
            for endpoint in [binding.route.source(), binding.route.destination()] {
                if topology.node(endpoint)?.is_switch() {
                    return Err(SimError::EndpointIsSwitch(endpoint));
                }
            }
        }
        faults.validate(topology)?;
        Ok(Simulator {
            topology,
            flows,
            config,
            faults,
        })
    }

    /// Run the simulation to completion (all generated traffic drained).
    pub fn run(&self) -> Result<SimulationResult, SimError> {
        let mut engine = Engine::new(self.topology, self.flows, self.config)?;
        engine.schedule_faults(&self.faults)?;
        engine.run()
    }
}

/// One simulated node, indexed densely by [`NodeId`].
enum NodeSlot {
    /// An end host or IP router (traffic endpoint).
    Endpoint(EndpointState),
    /// A software Ethernet switch.
    Switch(Box<SwitchState>),
}

/// Cached outgoing link parameters of one node, sorted by neighbour.
#[derive(Clone, Copy)]
struct LinkOut {
    to: NodeId,
    speed: BitRate,
    propagation: Time,
    /// The receiver's input-port index for frames sent over this link
    /// (precomputed so arrivals never search the receiver's port table;
    /// unused when the receiver is an endpoint).
    dst_port: u32,
}

/// Pre-packetized generation data of one GMF frame of a flow.
struct FrameGen {
    jitter: Time,
    min_interarrival: Time,
    /// Wire bits of each Ethernet fragment of the packet.
    wire_bits: Box<[Bits]>,
}

/// Lazy arrival state of one flow: only the *next* packet's release time
/// is known; the packet materialises into the event queue just before the
/// clock reaches it.
struct FlowCursor {
    id: FlowId,
    source: NodeId,
    /// The source's output port towards the first hop.
    out_port: usize,
    priority: Priority,
    frames: Box<[FrameGen]>,
    tsum: Time,
    /// Release (source arrival) time of the next packet.
    release: Time,
    /// Sequence number of the next packet.
    sequence: u64,
    /// Per-flow random stream (arrival slack, GOP pauses, initial phase).
    rng: ChaCha8Rng,
}

/// Mutable state of one simulation run.
struct Engine {
    config: SimConfig,
    queue: EventQueue,
    /// Node state, indexed by `NodeId.0` (node ids are dense).
    nodes: Vec<NodeSlot>,
    /// Outgoing link parameters per node, sorted by neighbour.  For
    /// endpoints the index is also the node's port number.
    links: Vec<Vec<LinkOut>>,
    /// Per switch: interface port → index into `links` of its out-link,
    /// `NO_PORT` for in-only ports (one-way topologies).  Lets the tx hot
    /// path go port → link parameters without a binary search.
    port_to_link: Vec<Vec<u32>>,
    /// Per switch (indexed by `NodeId.0`): flow (by `FlowId.0`) → output
    /// port, `NO_PORT` where the switch does not route the flow.  A flat
    /// table, so the per-frame routing step is one indexed load.
    forwarding: Vec<Vec<u32>>,
    /// flow (by `FlowId.0`) → destination node, for delivery assertions.
    destinations: Vec<Option<NodeId>>,
    /// Lazy per-flow arrival cursors.
    cursors: Vec<FlowCursor>,
    /// Pending arrivals: min-heap of (next release, cursor index).  Ties
    /// materialise in cursor (flow) order, keeping generation
    /// deterministic.
    arrivals: BinaryHeap<Reverse<(Time, usize)>>,
    /// Packet reassembly progress at destinations (multi-fragment packets
    /// only; single-fragment packets complete without touching the map).
    reassembly: BTreeMap<PacketId, u16>,
    /// Cables currently down (unordered `(min, max)` endpoint pairs).
    downed: BTreeSet<(NodeId, NodeId)>,
    stats: SimStats,
}

/// Fragment release offset within the packet's generalized-jitter window.
fn fragment_offset(
    config: &SimConfig,
    sequence: u64,
    fragment: u16,
    n_fragments: u16,
    jitter: Time,
) -> Time {
    if jitter.is_zero() {
        return Time::ZERO;
    }
    if matches!(config.arrival, ArrivalPolicy::MaxReleaseJitter) {
        // Adversarial release: the flow's first packet is held to the
        // very end of its jitter window (every fragment, including the
        // first), all later packets release immediately — the network
        // sees the first two packets almost `GJ` closer together than
        // their nominal minimum inter-arrival time.
        return if sequence == 0 {
            jitter * 0.999
        } else {
            Time::ZERO
        };
    }
    if fragment == 0 {
        return Time::ZERO;
    }
    match config.jitter_spread {
        JitterSpread::AtStart => Time::ZERO,
        JitterSpread::Uniform => jitter * (f64::from(fragment) / f64::from(n_fragments)),
        JitterSpread::AtEnd => jitter * 0.999,
    }
}

impl Engine {
    fn new(topology: &Topology, flows: &FlowSet, config: SimConfig) -> Result<Self, SimError> {
        let n_nodes = topology.n_nodes();
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut links: Vec<Vec<LinkOut>> = vec![Vec::new(); n_nodes];
        let n_flows = flows
            .bindings()
            .iter()
            .map(|b| b.id.0 + 1)
            .max()
            .unwrap_or(0);
        let mut forwarding: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];

        for node in topology.nodes() {
            // Cache outgoing link parameters so the hot path never walks
            // the topology again.  The sorted order makes the index of an
            // entry the node's *port number* for endpoints.
            let outs = &mut links[node.id.0];
            for &to in topology.out_neighbours(node.id) {
                let link = topology.link_between(node.id, to)?;
                outs.push(LinkOut {
                    to,
                    speed: link.speed,
                    propagation: link.propagation,
                    dst_port: 0, // filled below, once every node exists
                });
            }
            outs.sort_unstable_by_key(|l| l.to);
            if let Some(cfg) = node.kind.switch_config() {
                let neighbours: Vec<NodeId> = topology
                    .out_neighbours(node.id)
                    .iter()
                    .chain(topology.in_neighbours(node.id))
                    .copied()
                    .collect();
                nodes.push(NodeSlot::Switch(Box::new(SwitchState::new(
                    cfg,
                    &neighbours,
                ))));
            } else {
                let targets: Vec<NodeId> = outs.iter().map(|l| l.to).collect();
                nodes.push(NodeSlot::Endpoint(EndpointState::new(&targets)));
            }
        }

        // Second pass, now that every receiver's port table exists:
        // precompute each link's destination input port, and each switch's
        // port → out-link index map.
        for (from, from_links) in links.iter_mut().enumerate() {
            for link in from_links {
                link.dst_port = match &nodes[link.to.0] {
                    NodeSlot::Switch(s) => {
                        let port = s
                            .port_of(NodeId(from))
                            // tidy-allow: unwrap invariant: an out-link makes `from` a neighbour of its receiver
                            .expect("an out-link makes `from` a neighbour of its receiver");
                        port as u32
                    }
                    // Endpoints take delivery directly; no input port.
                    NodeSlot::Endpoint(_) => 0,
                };
            }
        }
        let mut port_to_link: Vec<Vec<u32>> = vec![Vec::new(); n_nodes];
        for (id, slot) in nodes.iter().enumerate() {
            if let NodeSlot::Switch(s) = slot {
                port_to_link[id] = (0..s.n_ports())
                    .map(|port| {
                        links[id]
                            .binary_search_by_key(&s.neighbour(port), |l| l.to)
                            .map_or(NO_PORT, |i| i as u32)
                    })
                    .collect();
            }
        }

        let max_flow_id = flows.bindings().iter().map(|b| b.id.0).max();
        let mut destinations = vec![None; max_flow_id.map_or(0, |m| m + 1)];
        let mut cursors = Vec::new();
        let mut arrivals = BinaryHeap::new();
        for (slot, binding) in flows.bindings().iter().enumerate() {
            destinations[binding.id.0] = Some(binding.route.destination());
            for &switch in binding.route.switches() {
                let next = binding.route.successor(switch)?;
                let port = match &nodes[switch.0] {
                    NodeSlot::Switch(s) => s
                        .port_of(next)
                        .ok_or(SimError::Net(NetError::NoSuchLink(switch, next)))?,
                    // tidy-allow: unwrap invariant: route interiors are switches, validated above
                    NodeSlot::Endpoint(_) => unreachable!("route interiors are switches"),
                };
                let table = &mut forwarding[switch.0];
                if table.is_empty() {
                    table.resize(n_flows, NO_PORT);
                }
                table[binding.id.0] = port as u32;
            }

            let source = binding.route.source();
            let next_hop = binding
                .route
                .successor(source)
                // tidy-allow: unwrap invariant: routes have at least one hop
                .expect("routes have at least one hop");
            let out_port = links[source.0]
                .binary_search_by_key(&next_hop, |l| l.to)
                .map_err(|_| SimError::Net(NetError::NoSuchLink(source, next_hop)))?;
            let flow = &binding.flow;
            let frames: Box<[FrameGen]> = (0..flow.n_frames())
                .map(|k| {
                    let spec = flow.frame_cyclic(k);
                    let packetization = packetize(spec.payload, &binding.encapsulation);
                    FrameGen {
                        jitter: spec.jitter,
                        min_interarrival: spec.min_interarrival,
                        wire_bits: packetization.frame_wire_bits.into_boxed_slice(),
                    }
                })
                .collect();

            // Each flow draws from its own seed-derived random stream, so
            // lazy interleaved generation stays deterministic regardless
            // of materialisation order.
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(config.seed, slot as u64));
            let phase = if config.aligned_start || config.arrival.forces_aligned_start() {
                Time::ZERO
            } else {
                flow.frame_cyclic(0).min_interarrival * rng.gen_range(0.0..1.0)
            };

            if phase < config.horizon {
                arrivals.push(Reverse((phase, slot)));
            }
            cursors.push(FlowCursor {
                id: binding.id,
                source,
                out_port,
                priority: binding.priority,
                frames,
                tsum: flow.tsum(),
                release: phase,
                sequence: 0,
                rng,
            });
        }
        Ok(Engine {
            config,
            queue: EventQueue::new(),
            nodes,
            links,
            port_to_link,
            forwarding,
            destinations,
            cursors,
            arrivals,
            reassembly: BTreeMap::new(),
            downed: BTreeSet::new(),
            // Sample retention is a debug knob (see
            // `SimConfig::keep_samples`): on via the config field or the
            // `GMF_SIM_KEEP_SAMPLES` env var (unset, empty or `0` = off).
            stats: SimStats::new(
                config.keep_samples
                    || std::env::var("GMF_SIM_KEEP_SAMPLES")
                        .map(|v| !v.is_empty() && v != "0")
                        .unwrap_or(false),
            ),
        })
    }

    /// Schedule the scripted faults.  Called before any traffic
    /// materialises so that a fault firing at the same instant as a frame
    /// release is applied first (the event queue breaks ties by insertion
    /// order, and lazy arrivals always enqueue after already-pending
    /// same-instant events).
    fn schedule_faults(&mut self, faults: &FaultScript) -> Result<(), SimError> {
        for event in faults.events() {
            self.queue
                .schedule(event.at, EventKind::Fault { kind: event.kind })?;
        }
        Ok(())
    }

    /// Materialise the next packet of flow cursor `slot`: schedule the
    /// release of its Ethernet fragments and advance the cursor to the
    /// packet after it.
    fn emit_packet(&mut self, slot: usize) -> Result<(), SimError> {
        let cursor = &mut self.cursors[slot];
        let release = cursor.release;
        let sequence = cursor.sequence;
        let gmf_frame = (sequence as usize) % cursor.frames.len();
        let gen = &cursor.frames[gmf_frame];
        let n_fragments = gen.wire_bits.len() as u16;
        debug_assert_eq!(usize::from(n_fragments), gen.wire_bits.len());

        self.stats.packets_released += 1;
        for (fragment, &wire_bits) in gen.wire_bits.iter().enumerate() {
            let fragment = fragment as u16;
            let offset = fragment_offset(&self.config, sequence, fragment, n_fragments, gen.jitter);
            let frame = EthFrame {
                packet: PacketId {
                    flow: cursor.id,
                    sequence,
                },
                gmf_frame: gmf_frame as u32,
                fragment,
                n_fragments,
                wire_bits,
                priority: cursor.priority,
                packet_arrival: release,
            };
            self.queue.schedule(
                release + offset,
                EventKind::SourceFrameRelease {
                    host: cursor.source,
                    port: cursor.out_port,
                    frame,
                },
            )?;
        }

        let gap = match self.config.arrival {
            ArrivalPolicy::Dense
            | ArrivalPolicy::CriticalInstant
            | ArrivalPolicy::MaxReleaseJitter => gen.min_interarrival,
            ArrivalPolicy::RandomSlack { slack } => {
                gen.min_interarrival * (1.0 + cursor.rng.gen_range(0.0..=slack.max(0.0)))
            }
            ArrivalPolicy::BurstyGops { max_pause } => {
                // Dense inside the cycle; a random pause before the next
                // GOP re-randomises the flows' relative phasing (gaps
                // only ever grow, so arrivals stay legal).
                let mut gap = gen.min_interarrival;
                if gmf_frame + 1 == cursor.frames.len() {
                    gap += cursor.tsum * cursor.rng.gen_range(0.0..=max_pause.max(0.0));
                }
                gap
            }
        };
        cursor.sequence += 1;
        cursor.release = release + gap;
        if cursor.release < self.config.horizon {
            self.arrivals.push(Reverse((cursor.release, slot)));
        }
        Ok(())
    }

    /// Materialise every flow arrival due at or before the next event.
    /// Fragments enter the queue at times `>= release`, and releases are
    /// popped in (time, flow) order, so materialisation never schedules
    /// behind the clock.
    fn materialise_due_arrivals(&mut self) -> Result<(), SimError> {
        while let Some(&Reverse((release, slot))) = self.arrivals.peek() {
            if let Some(head) = self.queue.peek_time() {
                if head < release {
                    break;
                }
            }
            self.arrivals.pop();
            debug_assert_eq!(self.cursors[slot].release, release);
            self.emit_packet(slot)?;
        }
        Ok(())
    }

    fn endpoint_mut(&mut self, id: NodeId) -> &mut EndpointState {
        match &mut self.nodes[id.0] {
            NodeSlot::Endpoint(e) => e,
            // tidy-allow: unwrap invariant: callers address endpoints only
            NodeSlot::Switch(_) => unreachable!("node is an endpoint"),
        }
    }

    fn switch_mut(&mut self, id: NodeId) -> &mut SwitchState {
        match &mut self.nodes[id.0] {
            NodeSlot::Switch(s) => s,
            // tidy-allow: unwrap invariant: callers address switches only
            NodeSlot::Endpoint(_) => unreachable!("node is a switch"),
        }
    }

    /// Output port of the link from `from` towards `to`.  For endpoints
    /// the index agrees with [`EndpointState`]'s port numbering (both are
    /// the sorted out-neighbour order).
    fn port_out(&self, from: NodeId, to: NodeId) -> Result<usize, SimError> {
        self.links[from.0]
            .binary_search_by_key(&to, |l| l.to)
            .map_err(|_| SimError::Net(NetError::NoSuchLink(from, to)))
    }

    fn run(mut self) -> Result<SimulationResult, SimError> {
        let mut events_processed: u64 = 0;
        let mut final_time = Time::ZERO;
        loop {
            self.materialise_due_arrivals()?;
            let Some(event) = self.queue.pop() else {
                break;
            };
            events_processed += 1;
            if events_processed > MAX_EVENTS {
                return Err(SimError::EventLimitExceeded);
            }
            final_time = event.time;
            let now = event.time;
            match event.kind {
                EventKind::SourceFrameRelease { host, port, frame } => {
                    self.endpoint_mut(host).out_queues[port].push_back(frame);
                    self.try_start_endpoint_tx(host, port, now)?;
                }
                EventKind::HostTxComplete { host, port } => {
                    self.stats.frames_transmitted += 1;
                    let link = self.links[host.0][port];
                    let frame = self.endpoint_mut(host).tx_in_flight[port]
                        .take()
                        // tidy-allow: unwrap invariant: a frame was in flight
                        .expect("a frame was in flight");
                    self.queue.schedule(
                        now + link.propagation,
                        EventKind::FrameArrival {
                            node: link.to,
                            in_port: link.dst_port as usize,
                            frame,
                        },
                    )?;
                    self.try_start_endpoint_tx(host, port, now)?;
                }
                EventKind::FrameArrival {
                    node,
                    in_port,
                    frame,
                } => match &mut self.nodes[node.0] {
                    NodeSlot::Switch(sw) => {
                        sw.enqueue_input(in_port, frame);
                        self.wake_cpu(node, now)?;
                    }
                    NodeSlot::Endpoint(_) => {
                        self.deliver_to_destination(node, frame, now);
                    }
                },
                EventKind::CpuDispatch { switch } => {
                    self.cpu_dispatch(switch, now)?;
                }
                EventKind::SwitchTxComplete { switch, port } => {
                    self.stats.frames_transmitted += 1;
                    let link_idx = self.port_to_link[switch.0][port];
                    debug_assert_ne!(link_idx, NO_PORT, "transmissions complete on out-links");
                    let link = self.links[switch.0][link_idx as usize];
                    let frame = self
                        .switch_mut(switch)
                        .nic_unload(port)
                        // tidy-allow: unwrap invariant: a frame was in flight
                        .expect("a frame was in flight");
                    self.queue.schedule(
                        now + link.propagation,
                        EventKind::FrameArrival {
                            node: link.to,
                            in_port: link.dst_port as usize,
                            frame,
                        },
                    )?;
                    // The NIC is idle again: the send task may have work.
                    self.wake_cpu(switch, now)?;
                }
                EventKind::Fault { kind } => self.apply_fault(kind, now)?,
            }
        }
        Ok(SimulationResult {
            stats: self.stats,
            events_processed,
            final_time,
            queue: self.queue.shape(),
        })
    }

    /// Apply one scripted fault.  Link faults gate *new* transmissions
    /// only: frames already handed to a NIC complete normally, and blocked
    /// frames wait in their output queues until the cable comes back.
    fn apply_fault(&mut self, kind: FaultKind, now: Time) -> Result<(), SimError> {
        match kind {
            FaultKind::LinkDown { a, b } => {
                self.downed.insert(cable(a, b));
            }
            FaultKind::LinkUp { a, b } => {
                self.downed.remove(&cable(a, b));
                // Blocked senders on both ends may resume immediately.
                for (from, to) in [(a, b), (b, a)] {
                    match &self.nodes[from.0] {
                        NodeSlot::Endpoint(_) => {
                            let port = self.port_out(from, to)?;
                            self.try_start_endpoint_tx(from, port, now)?;
                        }
                        NodeSlot::Switch(_) => self.wake_cpu(from, now)?,
                    }
                }
            }
            FaultKind::CpuDegrade { switch, factor } => {
                // Validated against the topology before the run started.
                let sw = self.switch_mut(switch);
                sw.croute = sw.croute * factor;
                sw.csend = sw.csend * factor;
            }
        }
        Ok(())
    }

    /// Start transmitting the next queued frame of an endpoint NIC if it is
    /// idle.
    fn try_start_endpoint_tx(
        &mut self,
        host: NodeId,
        port: usize,
        now: Time,
    ) -> Result<(), SimError> {
        let link = self.links[host.0][port];
        if self.downed.contains(&cable(host, link.to)) {
            return Ok(());
        }
        let endpoint = self.endpoint_mut(host);
        if endpoint.tx_in_flight[port].is_some() {
            return Ok(());
        }
        let Some(frame) = endpoint.out_queues[port].pop_front() else {
            return Ok(());
        };
        let tx_time = link.speed.transmission_time(frame.wire_bits);
        endpoint.tx_in_flight[port] = Some(frame);
        self.queue
            .schedule(now + tx_time, EventKind::HostTxComplete { host, port })?;
        Ok(())
    }

    /// Record the arrival of a fragment at its destination and complete the
    /// packet when all fragments are there.
    fn deliver_to_destination(&mut self, node: NodeId, frame: EthFrame, now: Time) {
        debug_assert_eq!(
            self.destinations
                .get(frame.packet.flow.0)
                .copied()
                .flatten(),
            Some(node),
            "frame delivered to a node that is not its flow's destination"
        );
        let complete = if frame.n_fragments == 1 {
            // Single-fragment packets complete on arrival; the common
            // (voice) case never touches the reassembly map.
            true
        } else {
            let received = self.reassembly.entry(frame.packet).or_insert(0);
            *received += 1;
            if *received == frame.n_fragments {
                self.reassembly.remove(&frame.packet);
                true
            } else {
                false
            }
        };
        if complete {
            if frame.packet_arrival >= self.config.measure_from {
                self.stats.record(PacketSample {
                    flow: frame.packet.flow,
                    sequence: frame.packet.sequence,
                    gmf_frame: frame.gmf_frame as usize,
                    arrival: frame.packet_arrival,
                    completion: now,
                });
            } else {
                // Outside the measurement window: the packet drained, but
                // its response time is not part of the aggregates.
                self.stats.packets_completed += 1;
            }
        }
    }

    /// Wake a sleeping switch CPU if it has work.
    fn wake_cpu(&mut self, switch: NodeId, now: Time) -> Result<(), SimError> {
        let sw = self.switch_mut(switch);
        if !sw.cpu_busy && sw.has_any_work() {
            sw.cpu_busy = true;
            self.queue
                .schedule(now, EventKind::CpuDispatch { switch })?;
        }
        Ok(())
    }

    /// One CPU dispatch: finish the previous task's effect, then pick and
    /// start the next task (skipping idle tasks at the idle-poll cost).
    fn cpu_dispatch(&mut self, switch: NodeId, now: Time) -> Result<(), SimError> {
        // 1. Apply the effect of the task that just finished.
        let pending = self.switch_mut(switch).pending.take();
        if let Some(pending) = pending {
            match pending {
                PendingCompletion::RouteDone { port, frame } => {
                    self.switch_mut(switch).enqueue_output(port, frame);
                }
                PendingCompletion::SendDone { port, frame } => {
                    let link_idx = self.port_to_link[switch.0][port];
                    debug_assert_ne!(link_idx, NO_PORT, "send tasks only feed out-links");
                    let link = self.links[switch.0][link_idx as usize];
                    let tx_time = link.speed.transmission_time(frame.wire_bits);
                    self.switch_mut(switch).nic_load(port, frame);
                    self.queue
                        .schedule(now + tx_time, EventKind::SwitchTxComplete { switch, port })?;
                }
            }
        }

        // 2. Select the next task with work, charging idle polls for the
        //    tasks that are offered a turn but have nothing to do.  Send
        //    tasks towards a downed cable have no useful work: their
        //    frames stay queued until the cable comes back.  Field-level
        //    borrows keep the scan allocation-free: the scheduler advances
        //    while the work predicate reads the queues directly.
        let downed = &self.downed;
        let forwarding = &self.forwarding;
        let SwitchState {
            ports,
            inputs,
            outputs,
            nic_in_flight,
            scheduler,
            tasks,
            cpu_busy,
            pending: pending_slot,
            croute,
            csend,
            input_frames,
            sendable_ports,
        } = match &mut self.nodes[switch.0] {
            NodeSlot::Switch(s) => s.as_mut(),
            // tidy-allow: unwrap invariant: dispatch events address switches
            NodeSlot::Endpoint(_) => unreachable!("node is a switch"),
        };
        let (croute, csend) = (*croute, *csend);
        let task_ready = |task: SwitchTask| match task {
            SwitchTask::Route { port } => !inputs[port].is_empty(),
            SwitchTask::Send { port } => {
                nic_in_flight[port].is_none()
                    && !outputs[port].is_empty()
                    && !downed.contains(&cable(switch, ports[port]))
            }
        };
        let Some((selected, idle_polls)) = scheduler.dispatch_scan(|idx| task_ready(tasks[idx]))
        else {
            // Nothing ready anywhere: the CPU sleeps until new work
            // arrives (the scan consumed no turns).
            *cpu_busy = false;
            return Ok(());
        };

        let (cost, pending) = match tasks[selected] {
            SwitchTask::Route { port } => {
                let frame = inputs[port]
                    .pop_front()
                    // tidy-allow: unwrap invariant: task had work
                    .expect("task had work");
                *input_frames -= 1;
                let out_port = forwarding[switch.0][frame.packet.flow.0];
                debug_assert_ne!(out_port, NO_PORT, "routed flows have forwarding entries");
                let out_port = out_port as usize;
                (
                    croute,
                    PendingCompletion::RouteDone {
                        port: out_port,
                        frame,
                    },
                )
            }
            SwitchTask::Send { port } => {
                let frame = outputs[port]
                    .pop_highest()
                    // tidy-allow: unwrap invariant: task had work
                    .expect("task had work");
                // The NIC is idle here (the task was ready), so the port
                // stops being sendable exactly when its queue drains.
                if outputs[port].is_empty() {
                    *sendable_ports -= 1;
                }
                (csend, PendingCompletion::SendDone { port, frame })
            }
        };
        *pending_slot = Some(pending);
        let busy_time = self.config.idle_poll_cost * idle_polls + cost;
        self.queue
            .schedule(now + busy_time, EventKind::CpuDispatch { switch })?;
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{paper_figure3_flow, voip_flow, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, star, LinkProfile, Priority, Route, SwitchConfig};

    /// Direct host-to-host cable: the simplest possible network.
    fn direct_link_scenario() -> (Topology, FlowSet) {
        let mut t = Topology::new();
        let a = t.add_end_host("a");
        let b = t.add_end_host("b");
        t.add_duplex_link(a, b, LinkProfile::ethernet_100m())
            .unwrap();
        let mut fs = FlowSet::new();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(10.0),
            Time::ZERO,
        );
        fs.add(voice, Route::new(&t, vec![a, b]).unwrap(), Priority(7));
        (t, fs)
    }

    #[test]
    fn direct_link_response_is_transmission_plus_propagation() {
        let (t, fs) = direct_link_scenario();
        let sim = Simulator::new(&t, &fs, SimConfig::quick()).unwrap();
        let result = sim.run().unwrap();
        // 200 ms horizon, one packet every 20 ms -> 10 packets (11 if the
        // accumulated release time lands just below the horizon).
        let released = result.stats.packets_released;
        assert!((10..=11).contains(&released), "released {released}");
        assert_eq!(result.stats.packets_completed, released);
        // Each voice packet is one Ethernet frame of 226 bytes on the wire:
        // 1808 bits at 100 Mbit/s = 18.08 µs, plus 5 µs propagation.
        let expected = Time::from_micros(18.08 + 5.0);
        let stats = result.stats.frame_stats(FlowId(0), 0).unwrap();
        assert!(
            stats.max.approx_eq(expected),
            "max {} vs {}",
            stats.max,
            expected
        );
        assert!(stats.min.approx_eq(expected));
        assert_eq!(result.stats.frames_transmitted, released);
        assert!(result.final_time <= Time::from_millis(201.0));
    }

    /// Two hosts on one switch, one flow between them.
    fn single_switch_scenario(payload_bytes: u64) -> (Topology, FlowSet) {
        let (t, _sw, hosts) = star(4, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        let mut fs = FlowSet::new();
        let flow = gmf_model::cbr_flow(
            "cbr",
            payload_bytes,
            Time::from_millis(10.0),
            Time::from_millis(10.0),
            Time::ZERO,
        );
        let route = shortest_path(&t, hosts[0], hosts[1]).unwrap();
        fs.add(flow, route, Priority(7));
        (t, fs)
    }

    #[test]
    fn single_switch_adds_processing_and_second_hop() {
        let (t, fs) = single_switch_scenario(1000);
        let sim = Simulator::new(&t, &fs, SimConfig::quick()).unwrap();
        let result = sim.run().unwrap();
        assert!(result.stats.packets_completed >= 20);
        assert_eq!(
            result.stats.packets_completed,
            result.stats.packets_released
        );
        let observed = result.stats.worst_response(FlowId(0)).unwrap();
        // Lower bound: two serialisations (8528 bits at 100 Mbit/s each),
        // two propagations, one CROUTE and one CSEND.
        let tx = Time::from_secs(8528.0 / 1e8);
        let floor = tx * 2u64 + Time::from_micros(5.0) * 2u64 + Time::from_micros(3.7);
        assert!(observed >= floor, "observed {observed} < floor {floor}");
        // Upper sanity bound: the isolated packet should clear the switch
        // within a few stride rounds.
        let ceiling = floor + Time::from_micros(100.0);
        assert!(
            observed <= ceiling,
            "observed {observed} > ceiling {ceiling}"
        );
        // Each packet traverses two links as a single Ethernet frame.
        assert_eq!(
            result.stats.frames_transmitted,
            2 * result.stats.packets_released
        );
    }

    #[test]
    fn fragmented_packets_complete_only_when_all_fragments_arrive() {
        // 4000-byte packets fragment into 3 Ethernet frames.
        let (t, fs) = single_switch_scenario(4000);
        let sim = Simulator::new(&t, &fs, SimConfig::quick()).unwrap();
        let result = sim.run().unwrap();
        assert!(result.stats.packets_completed >= 20);
        assert_eq!(
            result.stats.packets_completed,
            result.stats.packets_released
        );
        // 3 fragments × 2 links per packet.
        assert_eq!(
            result.stats.frames_transmitted,
            6 * result.stats.packets_released
        );
        // The response time covers at least the serialisation of the whole
        // packet (3 fragments back to back on the second link).
        let wire_total = Time::from_secs((2.0 * 12304.0 + 8848.0) / 1e8);
        let observed = result.stats.worst_response(FlowId(0)).unwrap();
        assert!(observed > wire_total);
    }

    #[test]
    fn static_priority_favours_the_higher_priority_flow() {
        // Two flows from different hosts converge on the same output port of
        // one switch; the link is slow enough to create a backlog.
        let (t, _sw, hosts) = star(4, LinkProfile::ethernet_10m(), SwitchConfig::paper());
        let mut fs = FlowSet::new();
        let mk = |name: &str| {
            gmf_model::cbr_flow(
                name,
                20_000,
                Time::from_millis(20.0),
                Time::from_millis(100.0),
                Time::from_millis(1.0),
            )
        };
        let hi_route = shortest_path(&t, hosts[0], hosts[3]).unwrap();
        let lo_route = shortest_path(&t, hosts[1], hosts[3]).unwrap();
        fs.add(mk("hi"), hi_route, Priority(7));
        fs.add(mk("lo"), lo_route, Priority(1));
        let sim = Simulator::new(&t, &fs, SimConfig::quick()).unwrap();
        let result = sim.run().unwrap();
        let hi = result.stats.worst_response(FlowId(0)).unwrap();
        let lo = result.stats.worst_response(FlowId(1)).unwrap();
        assert!(
            hi < lo,
            "high-priority flow ({hi}) must beat the low-priority flow ({lo})"
        );
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(6),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let cfg = SimConfig::quick()
            .with_seed(7)
            .with_horizon(Time::from_millis(400.0));
        let cfg = SimConfig {
            arrival: ArrivalPolicy::RandomSlack { slack: 0.3 },
            aligned_start: false,
            ..cfg
        };
        let r1 = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        let r2 = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.events_processed, r2.events_processed);
        // A different seed shifts phases and slack, changing at least the
        // observed response times (with very high probability).
        let r3 = Simulator::new(&t, &fs, cfg.with_seed(8))
            .unwrap()
            .run()
            .unwrap();
        assert_ne!(r1.stats, r3.stats);
    }

    /// Direct host-to-host cable carrying one explicit flow.
    fn direct_link_with(flow: gmf_model::GmfFlow) -> (Topology, FlowSet) {
        let mut t = Topology::new();
        let a = t.add_end_host("a");
        let b = t.add_end_host("b");
        t.add_duplex_link(a, b, LinkProfile::ethernet_100m())
            .unwrap();
        let mut fs = FlowSet::new();
        fs.add(flow, Route::new(&t, vec![a, b]).unwrap(), Priority(7));
        (t, fs)
    }

    /// A three-frame CBR-style flow with 10 ms gaps (one "GOP" = 30 ms).
    fn three_frame_flow(jitter: Time) -> gmf_model::GmfFlow {
        use gmf_model::{Bits, FrameSpec, GmfFlow};
        let frame = |payload: u64| FrameSpec {
            payload: Bits::from_bytes(payload),
            min_interarrival: Time::from_millis(10.0),
            deadline: Time::from_millis(100.0),
            jitter,
        };
        GmfFlow::new("gop", vec![frame(4000), frame(1000), frame(1000)]).unwrap()
    }

    #[test]
    fn critical_instant_equals_dense_with_aligned_start() {
        // CriticalInstant must override a randomised start: with
        // `aligned_start: false` it still produces exactly the traffic of
        // Dense with `aligned_start: true`.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(6),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let critical = SimConfig {
            arrival: ArrivalPolicy::CriticalInstant,
            aligned_start: false,
            ..SimConfig::quick()
        };
        let dense = SimConfig {
            arrival: ArrivalPolicy::Dense,
            aligned_start: true,
            ..SimConfig::quick()
        };
        let rc = Simulator::new(&t, &fs, critical).unwrap().run().unwrap();
        let rd = Simulator::new(&t, &fs, dense).unwrap().run().unwrap();
        assert_eq!(rc.stats, rd.stats);
        assert_eq!(rc.events_processed, rd.events_processed);
    }

    #[test]
    fn max_release_jitter_delays_exactly_the_first_packet() {
        // Single flow on a direct link: packet 0 is held to the end of its
        // jitter window, every later packet releases immediately, so the
        // worst response grows by 0.999 × GJ over the jitter-free dense run
        // while the best response is unchanged.
        let jitter = Time::from_millis(1.0);
        let flow = gmf_model::cbr_flow(
            "cbr",
            1000,
            Time::from_millis(10.0),
            Time::from_millis(50.0),
            jitter,
        );
        let (t, fs) = direct_link_with(flow);
        let base = SimConfig {
            jitter_spread: JitterSpread::AtStart,
            ..SimConfig::quick()
        };
        let adversarial = SimConfig {
            arrival: ArrivalPolicy::MaxReleaseJitter,
            ..base
        };
        let rb = Simulator::new(&t, &fs, base).unwrap().run().unwrap();
        let ra = Simulator::new(&t, &fs, adversarial).unwrap().run().unwrap();
        let base_stats = rb.stats.frame_stats(FlowId(0), 0).unwrap();
        let adv_stats = ra.stats.frame_stats(FlowId(0), 0).unwrap();
        assert!(adv_stats.max.approx_eq(base_stats.max + jitter * 0.999));
        assert!(adv_stats.min.approx_eq(base_stats.min));
        assert_eq!(ra.stats.packets_released, rb.stats.packets_released);
    }

    #[test]
    fn bursty_gops_only_stretches_cycle_boundaries() {
        let (t, fs) = direct_link_with(three_frame_flow(Time::ZERO));
        let dense = Simulator::new(&t, &fs, SimConfig::quick())
            .unwrap()
            .run()
            .unwrap();
        let bursty_cfg = SimConfig {
            arrival: ArrivalPolicy::BurstyGops { max_pause: 1.0 },
            ..SimConfig::quick()
        };
        let bursty = Simulator::new(&t, &fs, bursty_cfg).unwrap().run().unwrap();
        // Pauses only ever lengthen gaps, so the bursty run releases no
        // more traffic than the dense one but at least the first full GOP.
        assert!(bursty.stats.packets_released <= dense.stats.packets_released);
        assert!(bursty.stats.packets_released >= 3);
        assert_eq!(
            bursty.stats.packets_completed,
            bursty.stats.packets_released
        );
        // A zero-pause bursty run degenerates to Dense exactly.
        let zero_cfg = SimConfig {
            arrival: ArrivalPolicy::BurstyGops { max_pause: 0.0 },
            ..SimConfig::quick()
        };
        let zero = Simulator::new(&t, &fs, zero_cfg).unwrap().run().unwrap();
        assert_eq!(zero.stats, dense.stats);
    }

    #[test]
    fn keep_samples_config_retains_per_packet_samples() {
        let (t, fs) = direct_link_with(three_frame_flow(Time::ZERO));
        let off = Simulator::new(&t, &fs, SimConfig::quick())
            .unwrap()
            .run()
            .unwrap();
        assert!(off.stats.samples().is_empty());
        let on_cfg = SimConfig {
            keep_samples: true,
            ..SimConfig::quick()
        };
        let on = Simulator::new(&t, &fs, on_cfg).unwrap().run().unwrap();
        assert_eq!(on.stats.samples().len() as u64, on.stats.packets_completed);
        // Retention is observability only: the aggregates are untouched.
        assert_eq!(on.stats.packets_completed, off.stats.packets_completed);
        assert_eq!(on.events_processed, off.events_processed);
    }

    #[test]
    fn adversarial_policies_are_deterministic_across_repeat_runs() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(6),
        );
        for policy in [
            ArrivalPolicy::CriticalInstant,
            ArrivalPolicy::MaxReleaseJitter,
            ArrivalPolicy::BurstyGops { max_pause: 0.8 },
        ] {
            let cfg = SimConfig {
                arrival: policy,
                horizon: Time::from_millis(400.0),
                seed: 99,
                ..SimConfig::default()
            };
            let r1 = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
            let r2 = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
            assert_eq!(r1.stats, r2.stats, "{}", policy.label());
            assert_eq!(r1.events_processed, r2.events_processed);
        }
    }

    #[test]
    fn frames_that_never_arrive_report_none_not_zero() {
        // A 15 ms horizon admits GMF frames 0 (t = 0 ms) and 1 (t = 10 ms)
        // but never frame 2 (t = 20 ms): its statistics must be absent, not
        // a zero-count aggregate.
        let (t, fs) = direct_link_with(three_frame_flow(Time::ZERO));
        let cfg = SimConfig::quick().with_horizon(Time::from_millis(15.0));
        let result = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        assert_eq!(result.stats.packets_released, 2);
        assert!(result.stats.worst_frame_response(FlowId(0), 0).is_some());
        assert!(result.stats.worst_frame_response(FlowId(0), 1).is_some());
        assert_eq!(result.stats.worst_frame_response(FlowId(0), 2), None);
        assert_eq!(result.stats.completed_of_flow(FlowId(0)), 2);
        // A zero horizon releases nothing: every per-flow query is empty.
        let empty = Simulator::new(&t, &fs, cfg.with_horizon(Time::ZERO))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(empty.stats.packets_released, 0);
        assert_eq!(empty.stats.completed_of_flow(FlowId(0)), 0);
        assert_eq!(empty.stats.worst_response(FlowId(0)), None);
    }

    #[test]
    fn horizon_truncation_mid_gop_drains_in_flight_traffic() {
        // Cut the horizon inside the second GOP: packets released before
        // the horizon still complete (the simulator drains), and the frame
        // coverage reflects the truncation point exactly.
        let (t, fs) = direct_link_with(three_frame_flow(Time::from_millis(0.5)));
        let cfg = SimConfig::quick().with_horizon(Time::from_millis(45.0));
        let result = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        // Releases at 0, 10, 20 | 30, 40 ms — five packets, frame 2 of the
        // second GOP falls past the horizon.
        assert_eq!(result.stats.packets_released, 5);
        assert_eq!(
            result.stats.packets_completed,
            result.stats.packets_released
        );
        assert_eq!(result.stats.frame_stats(FlowId(0), 0).unwrap().count, 2);
        assert_eq!(result.stats.frame_stats(FlowId(0), 1).unwrap().count, 2);
        assert_eq!(result.stats.frame_stats(FlowId(0), 2).unwrap().count, 1);
        // The drain runs past the horizon (the last packet arrives at
        // 40 ms and still needs transmission + propagation).
        assert!(result.final_time > Time::from_millis(40.0));
    }

    #[test]
    fn random_slack_spreads_arrivals() {
        let (t, fs) = direct_link_scenario();
        let dense = SimConfig::quick();
        let slack = SimConfig {
            arrival: ArrivalPolicy::RandomSlack { slack: 0.5 },
            ..SimConfig::quick()
        };
        let rd = Simulator::new(&t, &fs, dense).unwrap().run().unwrap();
        let rs = Simulator::new(&t, &fs, slack).unwrap().run().unwrap();
        assert!(rs.stats.packets_released <= rd.stats.packets_released);
        assert!(rs.stats.packets_released >= rd.stats.packets_released / 2);
    }

    #[test]
    fn flows_may_not_start_or_end_at_switches() {
        let (t, _sw, hosts) = star(3, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        let mut fs = FlowSet::new();
        let flow = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(10.0),
            Time::ZERO,
        );
        // Route ending at the switch itself.
        let bad_route = Route::new(&t, vec![hosts[0], NodeId(0)]).unwrap();
        fs.add(flow, bad_route, Priority(7));
        assert!(matches!(
            Simulator::new(&t, &fs, SimConfig::quick()),
            Err(SimError::EndpointIsSwitch(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(SimError::EndpointIsSwitch(NodeId(4))
            .to_string()
            .contains("node4"));
        assert!(SimError::EventLimitExceeded.to_string().contains("limit"));
        let e: SimError = NetError::UnknownNode(NodeId(1)).into();
        assert!(e.to_string().contains("network"));
        let e = SimError::EventInPast {
            at: Time::from_millis(-1.0),
            now: Time::ZERO,
        };
        assert!(e.to_string().contains("in the past"));
    }

    #[test]
    fn negative_fault_time_is_a_hard_error_in_every_profile() {
        // The realistic trigger for a past-time event: a fault scripted
        // before t = 0.  The event queue rejects it with a hard error (not
        // a `debug_assert!`), so this test also passes under
        // `--release`.
        let (t, fs) = direct_link_scenario();
        let script = crate::faults::FaultScript::new(vec![crate::faults::TransientEvent {
            at: Time::from_millis(-5.0),
            kind: crate::faults::FaultKind::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
        }]);
        let err = Simulator::with_faults(&t, &fs, SimConfig::quick(), script)
            .unwrap()
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::EventInPast {
                at: Time::from_millis(-5.0),
                now: Time::ZERO,
            }
        );
    }

    #[test]
    fn empty_flow_set_runs_to_completion_immediately() {
        let (t, _) = paper_figure1();
        let fs = FlowSet::new();
        let result = Simulator::new(&t, &fs, SimConfig::quick())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.events_processed, 0);
        assert_eq!(result.stats.packets_completed, 0);
    }

    #[test]
    fn link_down_blocks_and_link_up_drains() {
        // One voice flow over a direct cable; the cable is down for
        // 30–60 ms.  Packets released in that window complete only after
        // the repair, so the worst response grows by roughly the outage
        // length; the run still drains completely and deterministically.
        let (t, fs) = direct_link_scenario();
        let script = crate::faults::FaultScript::new(vec![
            crate::faults::TransientEvent {
                at: Time::from_millis(30.0),
                kind: crate::faults::FaultKind::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            },
            crate::faults::TransientEvent {
                at: Time::from_millis(60.0),
                kind: crate::faults::FaultKind::LinkUp {
                    a: NodeId(1),
                    b: NodeId(0),
                },
            },
        ]);
        let cfg = SimConfig::quick();
        let baseline = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        let faulted = Simulator::with_faults(&t, &fs, cfg, script.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            faulted.stats.packets_released,
            baseline.stats.packets_released
        );
        assert_eq!(
            faulted.stats.packets_completed,
            faulted.stats.packets_released
        );
        let worst_base = baseline.stats.worst_response(FlowId(0)).unwrap();
        let worst_fault = faulted.stats.worst_response(FlowId(0)).unwrap();
        // The packet released at 40 ms waits out the rest of the outage
        // (~20 ms) before its transmission can start.
        assert!(worst_fault >= worst_base + Time::from_millis(15.0));
        assert!(worst_fault <= worst_base + Time::from_millis(25.0));
        // Byte-identical across repeat runs.
        let again = Simulator::with_faults(&t, &fs, cfg, script)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(faulted.stats, again.stats);
        assert_eq!(faulted.events_processed, again.events_processed);
    }

    #[test]
    fn measure_from_excludes_outage_traffic_and_recovery_conforms() {
        // Same outage, but measurement starts 40 ms after the repair: the
        // post-recovery response times match the fault-free run exactly.
        let (t, fs) = direct_link_scenario();
        let script = crate::faults::FaultScript::new(vec![
            crate::faults::TransientEvent {
                at: Time::from_millis(30.0),
                kind: crate::faults::FaultKind::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            },
            crate::faults::TransientEvent {
                at: Time::from_millis(60.0),
                kind: crate::faults::FaultKind::LinkUp {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            },
        ]);
        let cfg = SimConfig::quick().with_measure_from(Time::from_millis(100.0));
        let clean = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        let faulted = Simulator::with_faults(&t, &fs, cfg, script)
            .unwrap()
            .run()
            .unwrap();
        // Every drained packet still counts, measured or not.
        assert_eq!(
            faulted.stats.packets_completed,
            faulted.stats.packets_released
        );
        // Only post-100 ms arrivals are aggregated, and by then the
        // backlog has drained: the aggregates match the fault-free run.
        let sc = clean.stats.frame_stats(FlowId(0), 0).unwrap();
        let sf = faulted.stats.frame_stats(FlowId(0), 0).unwrap();
        assert_eq!(sc.count, sf.count);
        assert!(sf.max.approx_eq(sc.max));
        assert!(sf.min.approx_eq(sc.min));
        assert!(sc.count < clean.stats.packets_completed);
    }

    #[test]
    fn cpu_degrade_slows_the_switch() {
        let (t, fs) = single_switch_scenario(1000);
        let degrade = crate::faults::FaultScript::new(vec![crate::faults::TransientEvent {
            at: Time::ZERO,
            kind: crate::faults::FaultKind::CpuDegrade {
                switch: NodeId(0),
                factor: 8,
            },
        }]);
        let cfg = SimConfig::quick();
        let base = Simulator::new(&t, &fs, cfg).unwrap().run().unwrap();
        let slow = Simulator::with_faults(&t, &fs, cfg, degrade)
            .unwrap()
            .run()
            .unwrap();
        let wb = base.stats.worst_response(FlowId(0)).unwrap();
        let ws = slow.stats.worst_response(FlowId(0)).unwrap();
        // One CROUTE + one CSEND grew by 7× (3.7 µs -> 29.6 µs).
        let added = (Time::from_micros(2.7) + Time::from_micros(1.0)) * 7u64;
        assert!(ws >= wb + added * 0.99, "ws {ws} wb {wb}");
        assert_eq!(slow.stats.packets_completed, slow.stats.packets_released);
    }

    /// Conformance under failure: a switch degraded mid-script by factor
    /// `k` is exactly the network the survivor analysis of the matching
    /// `SwitchDegrade` scenario bounds — observed response times of
    /// post-degradation traffic must stay below those bounds.
    #[test]
    fn degraded_simulation_respects_survivor_analysis_bounds() {
        let netcfg = gmf_net::PaperNetworkConfig {
            access: LinkProfile::ethernet_100m(),
            ..Default::default()
        };
        let (t, net) = gmf_net::paper_figure1_with(netcfg);
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(6),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(50.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );

        // The analysis side: degrade the first switch on the routes by 2×
        // via the failure overlay and bound the survivor.
        let factor = 2u64;
        let switch = net.switches[0];
        let mut faulty = t.clone();
        let installed = *faulty.switch_config(switch).unwrap();
        let degraded = SwitchConfig {
            croute: installed.croute * factor,
            csend: installed.csend * factor,
            processors: installed.processors,
        };
        faulty.degrade_switch(switch, degraded).unwrap();
        let survivor = faulty.survivor();
        let report = gmf_analysis::analyze(
            survivor.topology(),
            &fs,
            &gmf_analysis::AnalysisConfig::conservative(),
        )
        .unwrap();
        assert!(report.schedulable);

        // The simulation side: the same degradation fires at 100 ms;
        // measurement starts at 200 ms, well after the last pre-fault
        // packet drained.
        let script = crate::faults::FaultScript::new(vec![crate::faults::TransientEvent {
            at: Time::from_millis(100.0),
            kind: crate::faults::FaultKind::CpuDegrade { switch, factor },
        }]);
        let sim_cfg = SimConfig {
            horizon: Time::from_secs(2.0),
            measure_from: Time::from_millis(200.0),
            ..SimConfig::default()
        };
        let result = Simulator::with_faults(&t, &fs, sim_cfg, script)
            .unwrap()
            .run()
            .unwrap();
        assert!(result.stats.packets_completed > 50);

        for binding in fs.bindings() {
            let flow_report = report.flow(binding.id).unwrap();
            for (k, frame_bound) in flow_report.frames.iter().enumerate() {
                if let Some(observed) = result.stats.worst_frame_response(binding.id, k) {
                    assert!(
                        observed <= frame_bound.bound,
                        "flow {} frame {k}: degraded simulation {} exceeds survivor bound {}",
                        binding.flow.name(),
                        observed,
                        frame_bound.bound
                    );
                }
            }
        }
    }

    /// The central soundness check (experiment E7 in miniature): the
    /// analytical bound with the conservative configuration dominates every
    /// observed response time in the paper scenario.
    ///
    /// The scenario uses 100 Mbit/s access links so that every frame's
    /// transmission fits well inside its minimum inter-arrival time on every
    /// traversed link; the paper's per-frame equations do not account for
    /// backlog from *preceding frames of the same flow* (see DESIGN.md §4
    /// and experiment E7), so this is the regime in which the published
    /// analysis is intended to be safe.
    #[test]
    fn analysis_bound_dominates_simulation_in_paper_scenario() {
        let netcfg = gmf_net::PaperNetworkConfig {
            access: LinkProfile::ethernet_100m(),
            ..Default::default()
        };
        let (t, net) = gmf_net::paper_figure1_with(netcfg);
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(6),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(50.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );

        let report =
            gmf_analysis::analyze(&t, &fs, &gmf_analysis::AnalysisConfig::conservative()).unwrap();
        assert!(report.schedulable);

        let sim_cfg = SimConfig {
            horizon: Time::from_secs(2.0),
            ..SimConfig::default()
        };
        let result = Simulator::new(&t, &fs, sim_cfg).unwrap().run().unwrap();
        assert!(result.stats.packets_completed > 50);

        for binding in fs.bindings() {
            let flow_report = report.flow(binding.id).unwrap();
            for (k, frame_bound) in flow_report.frames.iter().enumerate() {
                if let Some(observed) = result.stats.worst_frame_response(binding.id, k) {
                    assert!(
                        observed <= frame_bound.bound,
                        "flow {} frame {k}: simulated {} exceeds analytical bound {}",
                        binding.flow.name(),
                        observed,
                        frame_bound.bound
                    );
                }
            }
        }
    }
}
