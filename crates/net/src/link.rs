//! Directed point-to-point links.
//!
//! Ethernet switches are connected by full-duplex point-to-point links; the
//! paper models each direction independently (`link(N1,N2)` with a bit rate
//! `linkspeed(N1,N2)` and a propagation delay `prop(N1,N2)`), because each
//! direction has its own output queue at its own sending node.  The
//! topology therefore stores *directed* links and offers a helper to add
//! both directions of a full-duplex cable at once.

use crate::node::NodeId;
use gmf_model::{max_frame_transmission_time, BitRate, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a directed link within a topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A directed link from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The link's identifier.
    pub id: LinkId,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// `linkspeed(src, dst)`: the bit rate of the link.
    pub speed: BitRate,
    /// `prop(src, dst)`: the propagation delay of the link.
    pub propagation: Time,
}

impl Link {
    /// `MFT` of this link (eq. 1): the transmission time of one
    /// maximum-size Ethernet frame.
    pub fn mft(&self) -> Time {
        max_frame_transmission_time(self.speed)
    }

    /// The (unordered) endpoints as an ordered pair, useful as a map key for
    /// full-duplex cables.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link({},{}) @ {}", self.src.0, self.dst.0, self.speed)
    }
}

/// Common physical-layer profiles for links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Bit rate of the link.
    pub speed: BitRate,
    /// Propagation delay of the link.
    pub propagation: Time,
}

impl LinkProfile {
    /// 10 Mbit/s Ethernet with 5 µs propagation (≈ 1 km of fibre) — the
    /// access-link speed used in the paper's worked example.
    pub fn ethernet_10m() -> Self {
        LinkProfile {
            speed: BitRate::from_mbps(10.0),
            propagation: Time::from_micros(5.0),
        }
    }

    /// 100 Mbit/s Fast Ethernet with 5 µs propagation.
    pub fn ethernet_100m() -> Self {
        LinkProfile {
            speed: BitRate::from_mbps(100.0),
            propagation: Time::from_micros(5.0),
        }
    }

    /// Gigabit Ethernet with 5 µs propagation.
    pub fn ethernet_1g() -> Self {
        LinkProfile {
            speed: BitRate::from_gbps(1.0),
            propagation: Time::from_micros(5.0),
        }
    }

    /// A metropolitan-area link: 100 Mbit/s with 250 µs propagation
    /// (≈ 50 km of fibre).
    pub fn metro_100m() -> Self {
        LinkProfile {
            speed: BitRate::from_mbps(100.0),
            propagation: Time::from_micros(250.0),
        }
    }

    /// Override the propagation delay.
    pub fn with_propagation(mut self, propagation: Time) -> Self {
        self.propagation = propagation;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mft_matches_paper_value() {
        let link = Link {
            id: LinkId(0),
            src: NodeId(0),
            dst: NodeId(4),
            speed: BitRate::from_mbps(10.0),
            propagation: Time::from_micros(5.0),
        };
        assert!(link.mft().approx_eq(Time::from_millis(1.2304)));
        assert_eq!(link.endpoints(), (NodeId(0), NodeId(4)));
        assert!(link.to_string().contains("link(0,4)"));
    }

    #[test]
    fn profiles_have_expected_speeds() {
        assert_eq!(LinkProfile::ethernet_10m().speed.as_mbps(), 10.0);
        assert_eq!(LinkProfile::ethernet_100m().speed.as_mbps(), 100.0);
        assert_eq!(LinkProfile::ethernet_1g().speed.as_mbps(), 1000.0);
        assert_eq!(
            LinkProfile::metro_100m().propagation,
            Time::from_micros(250.0)
        );
        let p = LinkProfile::ethernet_1g().with_propagation(Time::from_micros(50.0));
        assert_eq!(p.propagation, Time::from_micros(50.0));
    }

    #[test]
    fn link_id_display() {
        assert_eq!(LinkId(3).to_string(), "link3");
    }
}
