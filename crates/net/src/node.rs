//! Network nodes: IP end hosts, software Ethernet switches and IP routers.
//!
//! The paper's network model (Section 2.1) distinguishes three kinds of
//! nodes.  End hosts and IP routers are sources and sinks of flows; only
//! Ethernet switches forward traffic, and only their queueing behaviour is
//! under the network operator's control.  A software switch runs `Click` on
//! a general-purpose processor: one *routing* task per input interface
//! (measured cost `CROUTE = 2.7 µs` in the paper) and one *send* task per
//! output interface (measured cost `CSEND = 1.0 µs`), all served
//! non-preemptively by stride scheduling configured as round-robin.  A task
//! is therefore served once every
//!
//! ```text
//! CIRC(N) = NINTERFACES(N) × (CROUTE(N) + CSEND(N))
//! ```
//!
//! The conclusion of the paper extends this to a switch with `m` processors
//! by assigning `NINTERFACES(N)/m` interfaces (and both of their tasks) to
//! each processor, which divides `CIRC` by `m` (rounding the interfaces per
//! processor up when the division is not exact).

use gmf_model::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`crate::topology::Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// CPU parameters of a software-implemented Ethernet switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// `CROUTE(N)`: time to dequeue an Ethernet frame from an input NIC,
    /// look up its priority and output port, and enqueue it in the priority
    /// queue.  The paper measured 2.7 µs on its Click implementation.
    pub croute: Time,
    /// `CSEND(N)`: time to dequeue an Ethernet frame from a priority queue
    /// and enqueue it into the output NIC's FIFO.  The paper measured 1.0 µs.
    pub csend: Time,
    /// Number of processors in the switch.  The paper's base model uses one;
    /// the conclusion discusses network processors with up to 16.
    pub processors: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig::paper()
    }
}

impl SwitchConfig {
    /// The configuration measured in the paper: `CROUTE = 2.7 µs`,
    /// `CSEND = 1.0 µs`, one processor.
    pub fn paper() -> Self {
        SwitchConfig {
            croute: Time::from_micros(2.7),
            csend: Time::from_micros(1.0),
            processors: 1,
        }
    }

    /// A faster (hardware-assisted or modern-CPU) profile: ten times faster
    /// per-frame processing than the paper's 2008-era PC.
    pub fn fast() -> Self {
        SwitchConfig {
            croute: Time::from_micros(0.27),
            csend: Time::from_micros(0.10),
            processors: 1,
        }
    }

    /// Use `processors` processors (the conclusion's network-processor
    /// scenario).
    pub fn with_processors(mut self, processors: usize) -> Self {
        assert!(processors >= 1, "a switch needs at least one processor");
        self.processors = processors;
        self
    }

    /// Per-frame service cost of one interface's pair of tasks:
    /// `CROUTE + CSEND`.
    pub fn per_interface_cost(&self) -> Time {
        self.croute + self.csend
    }

    /// `CIRC(N)`: the time between two consecutive services of the same task
    /// when the switch has `n_interfaces` network interfaces.
    ///
    /// With one processor this is `NINTERFACES × (CROUTE + CSEND)`; with `m`
    /// processors each processor serves `ceil(NINTERFACES / m)` interfaces.
    pub fn circ(&self, n_interfaces: usize) -> Time {
        let per_processor = n_interfaces.div_ceil(self.processors);
        self.per_interface_cost() * per_processor as u64
    }
}

/// The role of a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An IP end host (e.g. a PC running a video-conferencing application).
    /// End hosts originate and terminate flows; their internal queueing is
    /// outside the operator's control.
    EndHost,
    /// A software-implemented Ethernet switch; the only kind of node that
    /// forwards flows.
    Switch(SwitchConfig),
    /// An IP router connecting the Ethernet network to the wider Internet.
    /// Like end hosts, routers only appear as the first or last node of a
    /// route.
    Router,
}

impl NodeKind {
    /// `true` for Ethernet switches.
    pub fn is_switch(&self) -> bool {
        matches!(self, NodeKind::Switch(_))
    }

    /// The switch configuration, if this node is a switch.
    pub fn switch_config(&self) -> Option<&SwitchConfig> {
        match self {
            NodeKind::Switch(cfg) => Some(cfg),
            _ => None,
        }
    }
}

/// A node of the topology: an id, a kind and a human-readable name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier (its index in the topology).
    pub id: NodeId,
    /// The node's role.
    pub kind: NodeKind,
    /// Human-readable name used in reports.
    pub name: String,
}

impl Node {
    /// `true` if the node is an Ethernet switch.
    pub fn is_switch(&self) -> bool {
        self.kind.is_switch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_circ_is_14_8_us_for_4_interfaces() {
        // The worked example below Figure 5: 4 × (2.7 + 1.0) µs = 14.8 µs.
        let cfg = SwitchConfig::paper();
        assert!(cfg.per_interface_cost().approx_eq(Time::from_micros(3.7)));
        assert!(cfg.circ(4).approx_eq(Time::from_micros(14.8)));
    }

    #[test]
    fn conclusion_circ_is_11_1_us_for_48_ports_16_cpus() {
        // The conclusion: 48 ports on 16 processors -> 3 interfaces each ->
        // CIRC = 3 × 3.7 µs = 11.1 µs.
        let cfg = SwitchConfig::paper().with_processors(16);
        assert!(cfg.circ(48).approx_eq(Time::from_micros(11.1)));
    }

    #[test]
    fn circ_rounds_interfaces_per_processor_up() {
        let cfg = SwitchConfig::paper().with_processors(4);
        // 10 interfaces on 4 processors: one processor serves 3.
        assert!(cfg.circ(10).approx_eq(Time::from_micros(3.0 * 3.7)));
        // Exact division.
        assert!(cfg.circ(8).approx_eq(Time::from_micros(2.0 * 3.7)));
    }

    #[test]
    #[should_panic]
    fn zero_processors_rejected() {
        let _ = SwitchConfig::paper().with_processors(0);
    }

    #[test]
    fn fast_profile_is_faster() {
        assert!(SwitchConfig::fast().circ(4) < SwitchConfig::paper().circ(4));
    }

    #[test]
    fn node_kind_queries() {
        assert!(NodeKind::Switch(SwitchConfig::paper()).is_switch());
        assert!(!NodeKind::EndHost.is_switch());
        assert!(!NodeKind::Router.is_switch());
        assert!(NodeKind::Switch(SwitchConfig::paper())
            .switch_config()
            .is_some());
        assert!(NodeKind::EndHost.switch_config().is_none());
        let n = Node {
            id: NodeId(4),
            kind: NodeKind::Switch(SwitchConfig::paper()),
            name: "sw4".into(),
        };
        assert!(n.is_switch());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node7");
    }
}
