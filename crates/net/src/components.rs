//! Link-sharing connected components of a flow set — the network-level
//! substrate of the analysis crate's admission shards.
//!
//! Two flows *interfere* (directly) when they share a directed link: the
//! holistic analysis then couples their jitters through the shared output
//! queue.  The transitive closure of that relation partitions a flow set
//! into **components** whose fixed points are completely independent — a
//! flow's response-time bounds depend only on the flows in its own
//! component, because every edge of the jitter-dependency graph
//! `(B, r) → (A, r')` requires `B` and `A` to share the underlying
//! directed link of `r` (or `B = A`).  Weakly-connected components of the
//! per-resource dependency graph therefore project onto flows exactly as
//! the connected components of the "shares a directed link" graph, which
//! is what [`FlowComponents`] maintains.
//!
//! The structure is an incremental union-find keyed by [`FlowId`]:
//!
//! * [`FlowComponents::insert`] adds a flow and unions it with every
//!   component already using one of its links (*merge on bridge* — a
//!   route that touches two components fuses them);
//! * [`FlowComponents::remove`] deletes a flow and rebuilds only its own
//!   former component, splitting it if the departed flow was the bridge;
//! * lookups never mutate: the parent table is kept fully flattened
//!   (every entry points directly at its root), so `&self` queries are a
//!   single map read.
//!
//! All containers are `BTreeMap`/sorted `Vec`s — iteration order is a
//! pure function of the contents, never of insertion history, so the
//! admission plane built on top stays deterministic.

use crate::flowset::{FlowBinding, FlowSet};
use crate::node::NodeId;
use crate::route::Route;
use gmf_model::FlowId;
use std::collections::BTreeMap;

/// Connected components of the "flows share a directed link" graph,
/// maintained incrementally under flow arrivals and departures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowComponents {
    /// Fully flattened union-find: every flow maps directly to its root.
    parent: BTreeMap<FlowId, FlowId>,
    /// Root → sorted member ids (roots are internal; the *stable* name of
    /// a component is its smallest member, `members[root][0]`).
    members: BTreeMap<FlowId, Vec<FlowId>>,
    /// Directed link → sorted ids of the flows whose routes traverse it.
    links: BTreeMap<(NodeId, NodeId), Vec<FlowId>>,
}

impl FlowComponents {
    /// An empty component index.
    pub fn new() -> Self {
        FlowComponents::default()
    }

    /// Build the index of a whole flow set from scratch.
    pub fn build(flows: &FlowSet) -> Self {
        let mut c = FlowComponents::new();
        for binding in flows.bindings() {
            c.insert(binding);
        }
        c
    }

    /// Number of flows in the index.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the index contains no flows.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.members.len()
    }

    /// The stable name of `id`'s component: its smallest member id.
    /// `None` if the flow is not in the index.
    pub fn component_of(&self, id: FlowId) -> Option<FlowId> {
        let root = *self.parent.get(&id)?;
        Some(self.members[&root][0])
    }

    /// The sorted member ids of the component whose smallest member is
    /// `smallest`.  `None` if `smallest` is not a component's smallest
    /// member.
    pub fn members_of(&self, smallest: FlowId) -> Option<&[FlowId]> {
        let root = *self.parent.get(&smallest)?;
        let members = &self.members[&root];
        (members[0] == smallest).then_some(members.as_slice())
    }

    /// All components as `(smallest member, sorted members)`, ordered by
    /// smallest member id.
    pub fn components(&self) -> Vec<(FlowId, &[FlowId])> {
        let mut out: Vec<(FlowId, &[FlowId])> = self
            .members
            .values()
            .map(|m| (m[0], m.as_slice()))
            .collect();
        out.sort_unstable_by_key(|&(smallest, _)| smallest);
        out
    }

    /// The (deduplicated, sorted) component names touched by `route` —
    /// every component with a flow on one of the route's directed links.
    /// A candidate taking `route` would merge exactly these components.
    pub fn components_touching_route(&self, route: &Route) -> Vec<FlowId> {
        let mut touched = Vec::new();
        for hop in route.hops() {
            if let Some(flows) = self.links.get(&(hop.from, hop.to)) {
                for &f in flows {
                    // tidy-allow: unwrap invariant: flows in link lists are always indexed
                    let c = self.component_of(f).expect("indexed flow has a component");
                    if let Err(pos) = touched.binary_search(&c) {
                        touched.insert(pos, c);
                    }
                }
            }
        }
        touched
    }

    /// Add a flow, merging every component that already uses one of its
    /// links into the flow's component.
    ///
    /// # Panics
    ///
    /// Panics if the flow id is already indexed.
    pub fn insert(&mut self, binding: &FlowBinding) {
        let id = binding.id;
        assert!(
            !self.parent.contains_key(&id),
            "flow {id} is already indexed"
        );
        self.parent.insert(id, id);
        self.members.insert(id, vec![id]);
        for hop in binding.route.hops() {
            // Union with the component already on this link (all entries
            // of one link list are in one component, so the first
            // representative suffices), then register the flow.
            let other = {
                let list = self.links.entry((hop.from, hop.to)).or_default();
                let other = list.first().copied();
                if let Err(pos) = list.binary_search(&id) {
                    list.insert(pos, id);
                }
                other
            };
            if let Some(other) = other {
                self.union(id, other);
            }
        }
    }

    /// Remove a flow and rebuild (only) its former component from the
    /// surviving members' routes in `remaining`, splitting the component
    /// if the departed flow was its bridge.
    ///
    /// `remaining` must be the flow set *after* the departure (it is only
    /// consulted for the routes of the surviving members).
    ///
    /// # Panics
    ///
    /// Panics if the flow id is not indexed, or if a surviving member of
    /// its component is missing from `remaining`.
    pub fn remove(&mut self, binding: &FlowBinding, remaining: &FlowSet) {
        let id = binding.id;
        let root = *self
            .parent
            .get(&id)
            .unwrap_or_else(|| panic!("flow {id} is not indexed"));
        // Strip the departing flow from its link lists.
        for hop in binding.route.hops() {
            if let Some(list) = self.links.get_mut(&(hop.from, hop.to)) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.links.remove(&(hop.from, hop.to));
                }
            }
        }
        // Dissolve the old component…
        let survivors: Vec<FlowId> = self
            .members
            .remove(&root)
            // tidy-allow: unwrap invariant: parent roots always have a member list
            .expect("roots have member lists")
            .into_iter()
            .filter(|&m| m != id)
            .collect();
        self.parent.remove(&id);
        for &m in &survivors {
            self.parent.insert(m, m);
            self.members.insert(m, vec![m]);
        }
        // …and re-union the survivors along their (already indexed) links.
        // Every flow sharing a link with a survivor was in the old
        // component, so all of them are singletons again here.
        for &m in &survivors {
            let route = &remaining
                .get(m)
                .unwrap_or_else(|_| panic!("surviving flow {m} missing from the flow set"))
                .route;
            for hop in route.hops() {
                if let Some(list) = self.links.get(&(hop.from, hop.to)) {
                    if let Some(&other) = list.iter().find(|&&f| f != m) {
                        self.union(m, other);
                    }
                }
            }
        }
    }

    /// Union the components of `a` and `b` (no-op if already joined).
    /// The smaller component is re-pointed wholesale, keeping the parent
    /// table flattened; ties break towards the smaller root so the result
    /// is independent of argument order.
    fn union(&mut self, a: FlowId, b: FlowId) {
        let ra = self.parent[&a];
        let rb = self.parent[&b];
        if ra == rb {
            return;
        }
        let (keep, fold) = match self.members[&ra].len().cmp(&self.members[&rb].len()) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => (ra.min(rb), ra.max(rb)),
        };
        // tidy-allow: unwrap invariant: both roots were just looked up
        let folded = self.members.remove(&fold).expect("root has members");
        for &m in &folded {
            self.parent.insert(m, keep);
        }
        // tidy-allow: unwrap invariant: the kept root was just looked up
        let kept = self.members.get_mut(&keep).expect("root has members");
        // Merge the two sorted member lists.
        let mut merged = Vec::with_capacity(kept.len() + folded.len());
        let (mut i, mut j) = (0, 0);
        while i < kept.len() && j < folded.len() {
            if kept[i] < folded[j] {
                merged.push(kept[i]);
                i += 1;
            } else {
                merged.push(folded[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&kept[i..]);
        merged.extend_from_slice(&folded[j..]);
        *kept = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::star;
    use crate::flowset::Priority;
    use crate::link::LinkProfile;
    use crate::node::SwitchConfig;
    use crate::routing::shortest_path;
    use gmf_model::{cbr_flow, Time};

    fn probe_flow(name: &str) -> gmf_model::GmfFlow {
        cbr_flow(
            name,
            200,
            Time::from_millis(10.0),
            Time::from_millis(10.0),
            Time::ZERO,
        )
    }

    /// A star with 6 hosts; flows between disjoint host pairs stay in
    /// separate components until a bridging flow joins them.
    fn setup() -> (crate::topology::Topology, Vec<NodeId>, FlowSet) {
        let (t, _, hosts) = star(6, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        (t, hosts, FlowSet::new())
    }

    fn add_flow(
        t: &crate::topology::Topology,
        fs: &mut FlowSet,
        hosts: &[NodeId],
        from: usize,
        to: usize,
    ) -> FlowId {
        let route = shortest_path(t, hosts[from], hosts[to]).unwrap();
        fs.add(probe_flow(&format!("f{from}-{to}")), route, Priority(3))
    }

    #[test]
    fn disjoint_pairs_form_separate_components() {
        let (t, hosts, mut fs) = setup();
        let a = add_flow(&t, &mut fs, &hosts, 0, 1);
        let b = add_flow(&t, &mut fs, &hosts, 2, 3);
        let c = FlowComponents::build(&fs);
        assert_eq!(c.len(), 2);
        assert_eq!(c.n_components(), 2);
        assert_ne!(c.component_of(a), c.component_of(b));
        assert_eq!(c.members_of(a).unwrap(), &[a]);
        assert_eq!(c.components().len(), 2);
    }

    #[test]
    fn shared_link_merges_components() {
        let (t, hosts, mut fs) = setup();
        let a = add_flow(&t, &mut fs, &hosts, 0, 1);
        let b = add_flow(&t, &mut fs, &hosts, 2, 1); // shares link(sw, h1)
        let c = FlowComponents::build(&fs);
        assert_eq!(c.n_components(), 1);
        assert_eq!(c.component_of(a), Some(a));
        assert_eq!(c.component_of(b), Some(a));
        assert_eq!(c.members_of(a).unwrap(), &[a, b]);
        // `b` is not the smallest member, so it names no component.
        assert!(c.members_of(b).is_none());
    }

    #[test]
    fn bridging_flow_merges_and_its_departure_splits() {
        let (t, hosts, mut fs) = setup();
        let a = add_flow(&t, &mut fs, &hosts, 0, 1);
        let b = add_flow(&t, &mut fs, &hosts, 2, 3);
        let mut c = FlowComponents::build(&fs);
        assert_eq!(c.n_components(), 2);

        // A flow 0 → 3 shares a directed link with both existing flows
        // ((h0, sw) with `a`, (sw, h3) with `b`): merge.
        let bridge = add_flow(&t, &mut fs, &hosts, 0, 3);
        c.insert(fs.get(bridge).unwrap());
        assert_eq!(c.n_components(), 1);
        assert_eq!(c.members_of(a).unwrap(), &[a, b, bridge]);

        // Removing the bridge splits the component back apart.
        let binding = fs.get(bridge).unwrap().clone();
        fs.remove(bridge).unwrap();
        c.remove(&binding, &fs);
        assert_eq!(c.n_components(), 2);
        assert_eq!(c.members_of(a).unwrap(), &[a]);
        assert_eq!(c.members_of(b).unwrap(), &[b]);
        assert_eq!(c.component_of(bridge), None);

        // The incremental index matches a from-scratch rebuild.
        assert_eq!(c, FlowComponents::build(&fs));
    }

    #[test]
    fn components_touching_route_names_would_be_merges() {
        let (t, hosts, mut fs) = setup();
        let a = add_flow(&t, &mut fs, &hosts, 0, 1);
        let b = add_flow(&t, &mut fs, &hosts, 2, 3);
        let c = FlowComponents::build(&fs);
        let bridge_route = shortest_path(&t, hosts[0], hosts[3]).unwrap();
        assert_eq!(c.components_touching_route(&bridge_route), vec![a, b]);
        let lonely_route = shortest_path(&t, hosts[4], hosts[5]).unwrap();
        assert!(c.components_touching_route(&lonely_route).is_empty());
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let (t, hosts, mut fs) = setup();
        let mut c = FlowComponents::new();
        assert!(c.is_empty());
        // Chained merges: consecutive pairs share a source or destination
        // host, i.e. a *directed* access link.
        for (from, to) in [(0, 1), (2, 3), (4, 5), (0, 3), (2, 5)] {
            let id = add_flow(&t, &mut fs, &hosts, from, to);
            c.insert(fs.get(id).unwrap());
        }
        assert_eq!(c, FlowComponents::build(&fs));
        assert_eq!(c.n_components(), 1); // chained merges collapse all
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn double_insert_panics() {
        let (t, hosts, mut fs) = setup();
        let a = add_flow(&t, &mut fs, &hosts, 0, 1);
        let mut c = FlowComponents::build(&fs);
        c.insert(fs.get(a).unwrap());
    }
}
