//! Error types for the network-substrate crate.

use crate::node::NodeId;
use std::fmt;

/// Errors raised while building topologies, routes and flow sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A node id was used that does not exist in the topology.
    UnknownNode(NodeId),
    /// No link exists between the two given nodes.
    NoSuchLink(NodeId, NodeId),
    /// A link between the two nodes already exists.
    DuplicateLink(NodeId, NodeId),
    /// A link was declared with the same node at both ends.
    SelfLoop(NodeId),
    /// A route is shorter than two nodes.
    RouteTooShort,
    /// A route visits the same node twice.
    RouteRevisitsNode(NodeId),
    /// A route traverses a node that cannot forward traffic (an end host or
    /// IP router in the middle of the route).
    RouteThroughNonSwitch(NodeId),
    /// A route references a hop with no link in the topology.
    RouteMissingLink(NodeId, NodeId),
    /// The node is not on the given route.
    NodeNotOnRoute(NodeId),
    /// No route could be found between the two nodes.
    NoRoute(NodeId, NodeId),
    /// A link was marked failed although its cable is already failed.
    LinkAlreadyFailed(NodeId, NodeId),
    /// A switch operation (degrade) targeted a node that is not a switch.
    NotASwitch(NodeId),
    /// A flow id was used that does not exist in the flow set.
    UnknownFlow(usize),
    /// A flow id was inserted that already exists in the flow set.
    DuplicateFlow(usize),
    /// The underlying traffic model rejected a flow.
    Model(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::NoSuchLink(a, b) => write!(f, "no link from {a} to {b}"),
            NetError::DuplicateLink(a, b) => write!(f, "link from {a} to {b} already exists"),
            NetError::SelfLoop(n) => write!(f, "link endpoints must differ, got {n} twice"),
            NetError::RouteTooShort => write!(f, "a route must contain at least two nodes"),
            NetError::RouteRevisitsNode(n) => write!(f, "route visits node {n} more than once"),
            NetError::RouteThroughNonSwitch(n) => {
                write!(f, "route traverses {n}, which is not an Ethernet switch")
            }
            NetError::RouteMissingLink(a, b) => {
                write!(
                    f,
                    "route requires a link from {a} to {b}, which does not exist"
                )
            }
            NetError::NodeNotOnRoute(n) => write!(f, "node {n} is not on the route"),
            NetError::LinkAlreadyFailed(a, b) => {
                write!(f, "the cable between {a} and {b} is already failed")
            }
            NetError::NotASwitch(n) => write!(f, "{n} is not an Ethernet switch"),
            NetError::NoRoute(a, b) => write!(f, "no route exists from {a} to {b}"),
            NetError::UnknownFlow(i) => write!(f, "unknown flow id {i}"),
            NetError::DuplicateFlow(i) => write!(f, "flow id {i} already exists"),
            NetError::Model(msg) => write!(f, "traffic model error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<gmf_model::ModelError> for NetError {
    fn from(e: gmf_model::ModelError) -> Self {
        NetError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NetError::UnknownNode(NodeId(3))
            .to_string()
            .contains("node3"));
        assert!(NetError::NoSuchLink(NodeId(0), NodeId(4))
            .to_string()
            .contains("node0"));
        assert!(NetError::RouteTooShort.to_string().contains("two nodes"));
        assert!(NetError::RouteThroughNonSwitch(NodeId(7))
            .to_string()
            .contains("switch"));
        assert!(NetError::NoRoute(NodeId(1), NodeId(2))
            .to_string()
            .contains("no route"));
        assert!(NetError::Model("bad".into()).to_string().contains("bad"));
        assert!(NetError::LinkAlreadyFailed(NodeId(1), NodeId(2))
            .to_string()
            .contains("already failed"));
        assert!(NetError::NotASwitch(NodeId(5))
            .to_string()
            .contains("not an Ethernet switch"));
    }

    #[test]
    fn model_error_converts() {
        let e: NetError = gmf_model::ModelError::EmptyFlow.into();
        assert!(matches!(e, NetError::Model(_)));
    }
}
