//! The surviving network after failures: [`SurvivorView`].
//!
//! [`crate::Topology::fail_link`] and [`crate::Topology::degrade_switch`]
//! record faults in a transient overlay on the base topology;
//! [`crate::Topology::survivor`] materialises the network that remains: the
//! same node ids, failed cables removed, degraded switch configurations
//! applied.  The view additionally records the *dirty nodes* — nodes whose
//! analysis-relevant parameters changed:
//!
//! * both endpoints of every failed cable (their `NINTERFACES`, and for
//!   switches therefore `CIRC`, shrank), and
//! * every degraded switch (its `CROUTE`/`CSEND` changed).
//!
//! A flow is *affected* by the failure exactly when its route traverses a
//! dirty node.  This is deliberately a superset of the flows whose route is
//! *severed* (those crossing the failed cable itself — the cable's endpoints
//! are dirty, so every severed flow is affected): a flow that merely passes
//! through the endpoint switch of a failed cable keeps its route, but its
//! response-time bounds change because the switch's round length changed, so
//! it must be re-analysed all the same.

use crate::flowset::FlowSet;
use crate::node::NodeId;
use crate::route::Route;
use crate::topology::Topology;
use gmf_model::FlowId;

/// The network surviving a set of injected faults, plus the bookkeeping the
/// analysis layer needs to scope re-verification.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivorView {
    topology: Topology,
    failed: Vec<(NodeId, NodeId)>,
    degraded: Vec<NodeId>,
    dirty: Vec<NodeId>,
}

impl SurvivorView {
    /// Assemble a view; `failed` holds unordered `(min, max)` cable pairs and
    /// `dirty` must be sorted and deduplicated (both are produced that way by
    /// [`Topology::survivor`]).
    pub(crate) fn new(
        topology: Topology,
        failed: Vec<(NodeId, NodeId)>,
        degraded: Vec<NodeId>,
        dirty: Vec<NodeId>,
    ) -> Self {
        SurvivorView {
            topology,
            failed,
            degraded,
            dirty,
        }
    }

    /// The surviving topology (same node ids as the base topology).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Consume the view, keeping only the surviving topology.
    pub fn into_topology(self) -> Topology {
        self.topology
    }

    /// The failed cables as unordered `(min, max)` endpoint pairs, ascending.
    pub fn failed_cables(&self) -> &[(NodeId, NodeId)] {
        &self.failed
    }

    /// The degraded switches, ascending.
    pub fn degraded_switches(&self) -> &[NodeId] {
        &self.degraded
    }

    /// Nodes whose analysis-relevant parameters changed (sorted, deduped):
    /// failed-cable endpoints and degraded switches.
    pub fn dirty_nodes(&self) -> &[NodeId] {
        &self.dirty
    }

    /// `true` if `node` is dirty.
    pub fn is_dirty(&self, node: NodeId) -> bool {
        self.dirty.binary_search(&node).is_ok()
    }

    /// `true` if the route crosses no failed cable, i.e. it is still
    /// physically intact on the survivor (its bounds may change anyway if it
    /// touches a dirty node).
    pub fn route_survives(&self, route: &Route) -> bool {
        route.nodes().windows(2).all(|hop| {
            self.failed
                .binary_search(&crate::topology::cable_key(hop[0], hop[1]))
                .is_err()
        })
    }

    /// Flow ids (ascending) whose route traverses a dirty node — the exact
    /// set whose reports the failure can change, and a superset of
    /// [`SurvivorView::severed_flows`].
    pub fn affected_flows(&self, flows: &FlowSet) -> Vec<FlowId> {
        flows
            .bindings()
            .iter()
            .filter(|b| b.route.nodes().iter().any(|&n| self.is_dirty(n)))
            .map(|b| b.id)
            .collect()
    }

    /// Flow ids (ascending) whose route crosses a failed cable and therefore
    /// needs re-routing (or stranding).
    pub fn severed_flows(&self, flows: &FlowSet) -> Vec<FlowId> {
        flows
            .bindings()
            .iter()
            .filter(|b| !self.route_survives(&b.route))
            .map(|b| b.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;
    use crate::node::SwitchConfig;
    use crate::routing::shortest_path;
    use gmf_model::Time;

    /// h0 - s1 - s2 - h3, with a spare path s1 - s4 - s2.
    fn topo() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let s1 = t.add_switch(SwitchConfig::paper(), "s1");
        let s2 = t.add_switch(SwitchConfig::paper(), "s2");
        let h3 = t.add_end_host("h3");
        let s4 = t.add_switch(SwitchConfig::paper(), "s4");
        for (a, b) in [(h0, s1), (s1, s2), (s2, h3), (s1, s4), (s4, s2)] {
            t.add_duplex_link(a, b, LinkProfile::ethernet_100m())
                .unwrap();
        }
        (t, vec![h0, s1, s2, h3, s4])
    }

    #[test]
    fn fail_link_is_direction_insensitive_and_idempotent_only_once() {
        let (mut t, n) = topo();
        t.fail_link(n[2], n[1]).unwrap();
        assert!(t.is_failed(n[1], n[2]));
        assert!(t.is_failed(n[2], n[1]));
        assert!(matches!(
            t.fail_link(n[1], n[2]),
            Err(NetError::LinkAlreadyFailed(_, _))
        ));
        assert!(matches!(
            t.fail_link(n[0], n[3]),
            Err(NetError::NoSuchLink(_, _))
        ));
        // The base graph is untouched.
        assert!(t.has_link(n[1], n[2]));
        assert_eq!(t.n_links(), 10);
    }

    use crate::error::NetError;

    #[test]
    fn degrade_switch_returns_previous_and_rejects_hosts() {
        let (mut t, n) = topo();
        let slow = SwitchConfig {
            croute: Time::from_micros(27.0),
            csend: Time::from_micros(10.0),
            processors: 1,
        };
        let prev = t.degrade_switch(n[1], slow).unwrap();
        assert_eq!(prev, SwitchConfig::paper());
        let prev2 = t.degrade_switch(n[1], SwitchConfig::paper()).unwrap();
        assert_eq!(prev2, slow);
        assert!(matches!(
            t.degrade_switch(n[0], slow),
            Err(NetError::NotASwitch(_))
        ));
        // Base accessor still reports the installed configuration.
        assert_eq!(*t.switch_config(n[1]).unwrap(), SwitchConfig::paper());
    }

    #[test]
    fn survivor_removes_cable_and_applies_degradation() {
        let (mut t, n) = topo();
        let slow = SwitchConfig {
            croute: Time::from_micros(5.4),
            csend: Time::from_micros(2.0),
            processors: 1,
        };
        t.fail_link(n[1], n[2]).unwrap();
        t.degrade_switch(n[4], slow).unwrap();
        let view = t.survivor();
        let s = view.topology();
        assert_eq!(s.n_nodes(), t.n_nodes());
        assert_eq!(s.n_links(), t.n_links() - 2);
        assert!(!s.has_link(n[1], n[2]));
        assert!(!s.has_link(n[2], n[1]));
        assert_eq!(*s.switch_config(n[4]).unwrap(), slow);
        // s1 lost an interface: 3 neighbours -> 2.
        assert_eq!(t.n_interfaces(n[1]), 3);
        assert_eq!(s.n_interfaces(n[1]), 2);
        assert_eq!(view.dirty_nodes(), &[n[1], n[2], n[4]]);
        assert_eq!(view.failed_cables(), &[(n[1], n[2])]);
        assert_eq!(view.degraded_switches(), &[n[4]]);
    }

    #[test]
    fn restore_clears_overlay_deterministically() {
        let (mut t, n) = topo();
        let pristine = t.clone();
        t.fail_link(n[1], n[2]).unwrap();
        t.degrade_switch(n[2], SwitchConfig::fast()).unwrap();
        assert!(t.has_faults());
        t.restore();
        assert!(!t.has_faults());
        assert_eq!(t, pristine);
        // Refail after restore behaves exactly like the first failure.
        t.fail_link(n[1], n[2]).unwrap();
        let a = t.survivor();
        t.restore();
        t.fail_link(n[1], n[2]).unwrap();
        let b = t.survivor();
        assert_eq!(a, b);
    }

    #[test]
    fn affected_and_severed_flows() {
        let (mut t, n) = topo();
        let mut flows = FlowSet::new();
        let flow = gmf_model::voip_flow(
            "f",
            gmf_model::VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(1.0),
        );
        // f0 crosses s1-s2 forward; f1 crosses it in the reverse direction.
        let r0 = shortest_path(&t, n[0], n[3]).unwrap();
        let f0 = flows.add(flow.clone(), r0, crate::flowset::Priority(3));
        let r1 = shortest_path(&t, n[3], n[0]).unwrap();
        let f1 = flows.add(flow, r1, crate::flowset::Priority(3));
        t.fail_link(n[1], n[2]).unwrap();
        let view = t.survivor();
        assert_eq!(view.severed_flows(&flows), vec![f0, f1]);
        assert_eq!(view.affected_flows(&flows), vec![f0, f1]);
        // Routes re-validate on the survivor via the spare path.
        let alt = shortest_path(view.topology(), n[0], n[3]).unwrap();
        assert!(view.route_survives(&alt));
        assert_eq!(alt.n_hops(), 4);
    }
}
