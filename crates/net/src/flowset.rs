//! Flow bindings and flow sets.
//!
//! A *flow binding* attaches a GMF flow to the network: its route, its
//! IEEE 802.1p priority (used by every prioritized output queue along the
//! route) and its packetization configuration.  A *flow set* is the
//! collection of all bindings the operator has admitted (or is being asked
//! to admit); it provides the set-valued helpers of the paper's analysis:
//!
//! * `flows(N1, N2)` — every flow whose route transmits on the directed
//!   link `N1 → N2` ([`FlowSet::flows_on_link`]);
//! * `hep(τ_i, N1, N2)` (eq. 2) — the flows other than `τ_i` on that link
//!   with priority higher than or equal to `τ_i` ([`FlowSet::hep`]);
//! * `lp(τ_i, N1, N2)` (eq. 3) — the remaining (strictly lower priority)
//!   flows on the link ([`FlowSet::lp`]).
//!
//! Priorities can be assigned explicitly or derived with the classic
//! deadline-monotonic / rate-monotonic policies quantized onto the 2–8
//! priority levels that commercial 802.1p switches support.

use crate::error::NetError;
use crate::node::NodeId;
use crate::route::Route;
use crate::topology::Topology;
use gmf_model::{EncapsulationConfig, FlowId, GmfFlow, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An IEEE 802.1p-style priority: larger values are served first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Priority(pub u8);

impl Priority {
    /// The highest 802.1p priority (7).
    pub const HIGHEST: Priority = Priority(7);
    /// The lowest 802.1p priority (0), i.e. best effort.
    pub const LOWEST: Priority = Priority(0);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// How to assign priorities to the flows of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityPolicy {
    /// Keep the explicitly configured priorities.
    Explicit,
    /// Deadline-monotonic: flows with shorter minimum relative deadline get
    /// higher priority, quantized onto `levels` priority classes
    /// (2 ≤ levels ≤ 8 on commercial switches).
    DeadlineMonotonic {
        /// Number of distinct priority classes available on the switches.
        levels: u8,
    },
    /// Rate-monotonic: flows with shorter minimum inter-arrival time get
    /// higher priority, quantized onto `levels` priority classes.
    RateMonotonic {
        /// Number of distinct priority classes available on the switches.
        levels: u8,
    },
}

/// One flow attached to the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowBinding {
    /// The flow's identifier within its [`FlowSet`].
    pub id: FlowId,
    /// The traffic specification.
    pub flow: GmfFlow,
    /// The pre-specified route from source to destination.
    pub route: Route,
    /// The 802.1p priority used by every output queue along the route.
    pub priority: Priority,
    /// Packetization configuration (UDP vs RTP/UDP, minimum-frame padding).
    pub encapsulation: EncapsulationConfig,
}

impl FlowBinding {
    /// The source node of the flow.
    pub fn source(&self) -> NodeId {
        self.route.source()
    }

    /// The destination node of the flow.
    pub fn destination(&self) -> NodeId {
        self.route.destination()
    }
}

/// The set of flows offered to (or admitted into) the network.
///
/// Flow identifiers are *stable across removals*: [`FlowSet::add`] hands out
/// ids from a monotone counter, so [`FlowSet::remove`] never causes an id to
/// be reused and a `FlowId` held by an admission controller (or a cached
/// analysis artefact) keeps naming the same flow for the lifetime of the
/// set.  Bindings are kept sorted by id (insertion order), so lookups are a
/// binary search and iteration order is deterministic.
///
/// The serialized form carries the bindings only (scenario files written
/// before removals existed stay loadable); deserialization re-derives the
/// id counter as `max(id) + 1`.  Consequently id stability holds within
/// one in-memory set — analysis artefacts keyed by `FlowId` must not be
/// carried across a save/load of a set whose highest-id flow departed.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
#[serde(into = "FlowSetSerde")]
pub struct FlowSet {
    bindings: Vec<FlowBinding>,
    /// The id the next [`FlowSet::add`] will hand out.  Invariant: strictly
    /// greater than every id in `bindings`.
    next_id: usize,
}

/// The wire form of a [`FlowSet`]: the bindings alone.  The id counter is
/// re-derived on load, so files from before the counter existed parse.
#[derive(Serialize, Deserialize)]
struct FlowSetSerde {
    bindings: Vec<FlowBinding>,
}

impl From<FlowSet> for FlowSetSerde {
    fn from(set: FlowSet) -> FlowSetSerde {
        FlowSetSerde {
            bindings: set.bindings,
        }
    }
}

impl<'de> serde::de::Deserialize<'de> for FlowSet {
    fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = FlowSetSerde::deserialize(deserializer)?;
        let mut bindings = wire.bindings;
        bindings.sort_by_key(|b| b.id);
        // A duplicated id would make the binary-search accessors resolve
        // to an arbitrary copy and removal leave a shadowing twin behind;
        // reject the file loudly instead.
        if let Some(window) = bindings.windows(2).find(|w| w[0].id == w[1].id) {
            return Err(<D::Error as serde::de::Error>::custom(format!(
                "duplicate flow id {} in FlowSet",
                window[0].id
            )));
        }
        let next_id = bindings.last().map(|b| b.id.0 + 1).unwrap_or(0);
        Ok(FlowSet { bindings, next_id })
    }
}

impl FlowSet {
    /// Create an empty flow set.
    pub fn new() -> Self {
        FlowSet::default()
    }

    /// Add a flow with the default (plain UDP) packetization.
    pub fn add(&mut self, flow: GmfFlow, route: Route, priority: Priority) -> FlowId {
        self.add_with_encapsulation(flow, route, priority, EncapsulationConfig::paper())
    }

    /// Add a flow with an explicit packetization configuration.
    pub fn add_with_encapsulation(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
        encapsulation: EncapsulationConfig,
    ) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.bindings.push(FlowBinding {
            id,
            flow,
            route,
            priority,
            encapsulation,
        });
        id
    }

    /// Remove a flow (a departure, in admission-control terms), returning
    /// its binding.  The ids of the remaining flows are unchanged and the
    /// removed id is never reused by a later [`FlowSet::add`].
    pub fn remove(&mut self, id: FlowId) -> Result<FlowBinding, NetError> {
        match self.bindings.binary_search_by_key(&id, |b| b.id) {
            Ok(index) => Ok(self.bindings.remove(index)),
            Err(_) => Err(NetError::UnknownFlow(id.0)),
        }
    }

    /// Insert a pre-built binding with its id intact (the admission
    /// plane's shard-merge path: a trial set's accepted binding is folded
    /// back into the global set without re-numbering).  Fails on a
    /// duplicate id; the id counter advances past the inserted id so the
    /// next [`FlowSet::add`] never collides.
    pub fn insert(&mut self, binding: FlowBinding) -> Result<FlowId, NetError> {
        match self.bindings.binary_search_by_key(&binding.id, |b| b.id) {
            Ok(_) => Err(NetError::DuplicateFlow(binding.id.0)),
            Err(index) => {
                let id = binding.id;
                self.bindings.insert(index, binding);
                self.next_id = self.next_id.max(id.0 + 1);
                Ok(id)
            }
        }
    }

    /// Reserve `n` consecutive flow ids, returning the first.  The ids are
    /// not bound to any flow yet; [`FlowSet::insert`] materialises them.
    /// A batched admission request reserves its ids up front so every
    /// candidate's id is known before any trial runs — accepted or
    /// rejected, each request consumes exactly one id.
    pub fn reserve_ids(&mut self, n: usize) -> FlowId {
        let base = FlowId(self.next_id);
        self.next_id += n;
        base
    }

    /// A new flow set holding clones of the member bindings of `ids`
    /// (ids absent from the set are skipped).  The subset inherits the
    /// parent's id counter, so ids stay aligned between the two — this is
    /// how a shard-scoped admission trial is carved out of the accepted
    /// set.
    pub fn subset<I: IntoIterator<Item = FlowId>>(&self, ids: I) -> FlowSet {
        let mut bindings: Vec<FlowBinding> = ids
            .into_iter()
            .filter_map(|id| self.get(id).ok().cloned())
            .collect();
        bindings.sort_by_key(|b| b.id);
        bindings.dedup_by_key(|b| b.id);
        FlowSet {
            bindings,
            next_id: self.next_id,
        }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// `true` if the set contains no flows.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// All bindings, in id order.
    pub fn bindings(&self) -> &[FlowBinding] {
        &self.bindings
    }

    /// Iterate over all flow ids.
    pub fn ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.bindings.iter().map(|b| b.id)
    }

    /// Look up a binding.
    pub fn get(&self, id: FlowId) -> Result<&FlowBinding, NetError> {
        self.bindings
            .binary_search_by_key(&id, |b| b.id)
            .ok()
            .map(|index| &self.bindings[index])
            .ok_or(NetError::UnknownFlow(id.0))
    }

    /// `true` if the set contains a flow with the given id.
    pub fn contains(&self, id: FlowId) -> bool {
        self.bindings.binary_search_by_key(&id, |b| b.id).is_ok()
    }

    /// Check that every route of the set is valid in `topology`.
    pub fn validate_against(&self, topology: &Topology) -> Result<(), NetError> {
        for binding in &self.bindings {
            Route::new(topology, binding.route.nodes().to_vec())?;
        }
        Ok(())
    }

    /// `flows(N1, N2)`: ids of all flows transmitting on the directed link
    /// `from → to`, in id order.
    pub fn flows_on_link(&self, from: NodeId, to: NodeId) -> Vec<FlowId> {
        self.bindings
            .iter()
            .filter(|b| b.route.uses_link(from, to))
            .map(|b| b.id)
            .collect()
    }

    /// Ids of all flows that traverse (are forwarded by) the switch `node`,
    /// i.e. enter and leave it.
    pub fn flows_through_node(&self, node: NodeId) -> Vec<FlowId> {
        self.bindings
            .iter()
            .filter(|b| b.route.switches().contains(&node))
            .map(|b| b.id)
            .collect()
    }

    /// `hep(τ_i, N1, N2)` (eq. 2): flows other than `i` on the link
    /// `from → to` whose priority is higher than or equal to `i`'s.
    pub fn hep(&self, i: FlowId, from: NodeId, to: NodeId) -> Result<Vec<FlowId>, NetError> {
        let me = self.get(i)?;
        Ok(self
            .bindings
            .iter()
            .filter(|b| b.id != i && b.route.uses_link(from, to) && b.priority >= me.priority)
            .map(|b| b.id)
            .collect())
    }

    /// `lp(τ_i, N1, N2)` (eq. 3): flows other than `i` on the link
    /// `from → to` whose priority is strictly lower than `i`'s.
    pub fn lp(&self, i: FlowId, from: NodeId, to: NodeId) -> Result<Vec<FlowId>, NetError> {
        let me = self.get(i)?;
        Ok(self
            .bindings
            .iter()
            .filter(|b| b.id != i && b.route.uses_link(from, to) && b.priority < me.priority)
            .map(|b| b.id)
            .collect())
    }

    /// Re-assign priorities according to `policy`.
    ///
    /// For the monotone policies the flows are ranked by the policy's key
    /// (ties broken by flow id for determinism) and the ranks are quantized
    /// onto the available priority levels: the most urgent ⌈n/levels⌉ flows
    /// share the highest level, and so on.
    pub fn assign_priorities(&mut self, policy: PriorityPolicy) {
        match policy {
            PriorityPolicy::Explicit => {}
            PriorityPolicy::DeadlineMonotonic { levels } => {
                self.assign_by_key(levels, |flow| flow.min_deadline());
            }
            PriorityPolicy::RateMonotonic { levels } => {
                self.assign_by_key(levels, |flow| flow.min_interarrival());
            }
        }
    }

    fn assign_by_key(&mut self, levels: u8, key: impl Fn(&GmfFlow) -> Time) {
        let levels = levels.clamp(2, 8);
        let n = self.bindings.len();
        if n == 0 {
            return;
        }
        // Rank flows: smallest key = most urgent.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            key(&self.bindings[a].flow)
                .cmp(&key(&self.bindings[b].flow))
                .then_with(|| self.bindings[a].id.cmp(&self.bindings[b].id))
        });
        let per_level = n.div_ceil(levels as usize);
        for (rank, &idx) in order.iter().enumerate() {
            let level_index = rank / per_level; // 0 = most urgent group
            let priority = (levels - 1).saturating_sub(level_index as u8);
            self.bindings[idx].priority = Priority(priority);
        }
    }

    /// Build a [`LinkIndex`]: every directed link mapped to the flows
    /// transmitting on it, computed in one pass over the set.
    ///
    /// [`FlowSet::flows_on_link`] re-scans every flow (and walks every
    /// route) on each call, which is fine for one-off queries but quadratic
    /// when a caller needs the interferer list of every link — the analysis
    /// context and the dependency-graph builder both do.  The index answers
    /// the same query by slice lookup.  It is a snapshot: adding or
    /// removing flows invalidates it.
    pub fn link_index(&self) -> LinkIndex {
        let mut map: std::collections::BTreeMap<(NodeId, NodeId), Vec<FlowId>> =
            std::collections::BTreeMap::new();
        // Bindings are in id order, so each per-link list is too — the
        // same order `flows_on_link` produces.
        for binding in &self.bindings {
            for hop in binding.route.hops() {
                map.entry((hop.from, hop.to)).or_default().push(binding.id);
            }
        }
        LinkIndex { map }
    }

    /// The set of distinct directed links used by at least one flow.
    pub fn used_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut links: Vec<(NodeId, NodeId)> = self
            .bindings
            .iter()
            .flat_map(|b| b.route.hops().map(|h| (h.from, h.to)))
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }
}

/// A precomputed directed-link → flows map (see [`FlowSet::link_index`]).
#[derive(Debug, Clone, Default)]
pub struct LinkIndex {
    map: std::collections::BTreeMap<(NodeId, NodeId), Vec<FlowId>>,
}

impl LinkIndex {
    /// `flows(N1, N2)` by lookup: ids of all flows transmitting on the
    /// directed link `from → to`, in id order (identical to
    /// [`FlowSet::flows_on_link`] on the set the index was built from).
    pub fn flows_on_link(&self, from: NodeId, to: NodeId) -> &[FlowId] {
        self.map
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// The distinct directed links used by at least one flow, in order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.map.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;
    use crate::node::SwitchConfig;
    use gmf_model::{cbr_flow, voip_flow, VoiceCodec};

    /// h0 and h1 both send to h3 through s2; cross flow from h1 to h0.
    fn setup() -> (Topology, FlowSet, Vec<NodeId>) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let h1 = t.add_end_host("h1");
        let s2 = t.add_switch(SwitchConfig::paper(), "s2");
        let h3 = t.add_end_host("h3");
        t.add_duplex_link(h0, s2, LinkProfile::ethernet_100m())
            .unwrap();
        t.add_duplex_link(h1, s2, LinkProfile::ethernet_100m())
            .unwrap();
        t.add_duplex_link(s2, h3, LinkProfile::ethernet_100m())
            .unwrap();

        let mut fs = FlowSet::new();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(10.0),
            Time::ZERO,
        );
        let video = cbr_flow(
            "video",
            30_000,
            Time::from_millis(40.0),
            Time::from_millis(40.0),
            Time::ZERO,
        );
        let bulk = cbr_flow(
            "bulk",
            60_000,
            Time::from_millis(100.0),
            Time::from_millis(500.0),
            Time::ZERO,
        );
        fs.add(
            voice,
            Route::new(&t, vec![h0, s2, h3]).unwrap(),
            Priority(7),
        );
        fs.add(
            video,
            Route::new(&t, vec![h1, s2, h3]).unwrap(),
            Priority(5),
        );
        fs.add(bulk, Route::new(&t, vec![h1, s2, h3]).unwrap(), Priority(5));
        (t, fs, vec![h0, h1, s2, h3])
    }

    #[test]
    fn basic_accessors() {
        let (t, fs, n) = setup();
        assert_eq!(fs.len(), 3);
        assert!(!fs.is_empty());
        assert_eq!(fs.bindings().len(), 3);
        assert_eq!(fs.ids().count(), 3);
        assert!(fs.get(FlowId(0)).is_ok());
        assert!(matches!(fs.get(FlowId(9)), Err(NetError::UnknownFlow(9))));
        assert_eq!(fs.get(FlowId(0)).unwrap().source(), n[0]);
        assert_eq!(fs.get(FlowId(0)).unwrap().destination(), n[3]);
        fs.validate_against(&t).unwrap();
        assert_eq!(fs.flows_through_node(n[2]).len(), 3);
        assert!(fs.flows_through_node(n[0]).is_empty());
    }

    #[test]
    fn link_index_matches_flows_on_link() {
        let (_, fs, n) = setup();
        let index = fs.link_index();
        for from in &n {
            for to in &n {
                assert_eq!(
                    index.flows_on_link(*from, *to),
                    fs.flows_on_link(*from, *to).as_slice(),
                    "link ({from}, {to})"
                );
            }
        }
        assert_eq!(index.links().collect::<Vec<_>>(), fs.used_links());
        // An empty set indexes to nothing.
        let empty = FlowSet::new().link_index();
        assert!(empty.flows_on_link(n[0], n[2]).is_empty());
        assert_eq!(empty.links().count(), 0);
    }

    #[test]
    fn flows_on_link_and_used_links() {
        let (_, fs, n) = setup();
        // All three flows share the s2 -> h3 link.
        assert_eq!(fs.flows_on_link(n[2], n[3]).len(), 3);
        // Only the voice flow uses h0 -> s2.
        assert_eq!(fs.flows_on_link(n[0], n[2]), vec![FlowId(0)]);
        // Nothing flows back towards h0.
        assert!(fs.flows_on_link(n[2], n[0]).is_empty());
        let used = fs.used_links();
        assert!(used.contains(&(n[0], n[2])));
        assert!(used.contains(&(n[1], n[2])));
        assert!(used.contains(&(n[2], n[3])));
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn hep_and_lp_sets() {
        let (_, fs, n) = setup();
        // From the voice flow's (priority 7) point of view on the shared
        // link, nothing has higher-or-equal priority.
        assert!(fs.hep(FlowId(0), n[2], n[3]).unwrap().is_empty());
        assert_eq!(fs.lp(FlowId(0), n[2], n[3]).unwrap().len(), 2);
        // The two priority-5 flows see each other as equal priority and the
        // voice flow as higher.
        let hep1 = fs.hep(FlowId(1), n[2], n[3]).unwrap();
        assert!(hep1.contains(&FlowId(0)));
        assert!(hep1.contains(&FlowId(2)));
        assert!(!hep1.contains(&FlowId(1)));
        assert!(fs.lp(FlowId(1), n[2], n[3]).unwrap().is_empty());
        // On a link the flow does not use, the sets are empty.
        assert!(fs.hep(FlowId(0), n[1], n[2]).unwrap().is_empty());
        assert!(fs.hep(FlowId(9), n[2], n[3]).is_err());
    }

    #[test]
    fn deadline_monotonic_assignment() {
        let (_, mut fs, _) = setup();
        fs.assign_priorities(PriorityPolicy::DeadlineMonotonic { levels: 8 });
        let p: Vec<u8> = fs.bindings().iter().map(|b| b.priority.0).collect();
        // voice (10 ms) > video (40 ms) > bulk (500 ms).
        assert!(p[0] > p[1]);
        assert!(p[1] > p[2]);
    }

    #[test]
    fn rate_monotonic_assignment_with_few_levels() {
        let (_, mut fs, _) = setup();
        fs.assign_priorities(PriorityPolicy::RateMonotonic { levels: 2 });
        let p: Vec<u8> = fs.bindings().iter().map(|b| b.priority.0).collect();
        // voice has the shortest period (20 ms) so it is in the top class;
        // with 3 flows and 2 levels the first two ranks share the top class.
        assert_eq!(p[0], 1);
        assert!(p.iter().all(|&x| x <= 1));
        // Explicit policy leaves priorities untouched.
        let before = p.clone();
        fs.assign_priorities(PriorityPolicy::Explicit);
        let after: Vec<u8> = fs.bindings().iter().map(|b| b.priority.0).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn priority_ordering_and_display() {
        assert!(Priority::HIGHEST > Priority::LOWEST);
        assert!(Priority(3) > Priority(1));
        assert_eq!(Priority(3).to_string(), "prio3");
    }

    #[test]
    fn remove_keeps_ids_stable_and_never_reuses_them() {
        let (t, mut fs, n) = setup();
        assert_eq!(fs.len(), 3);
        assert!(fs.contains(FlowId(1)));

        // Remove the middle flow: the neighbours keep their ids.
        let removed = fs.remove(FlowId(1)).unwrap();
        assert_eq!(removed.id, FlowId(1));
        assert_eq!(removed.flow.name(), "video");
        assert_eq!(fs.len(), 2);
        assert!(!fs.contains(FlowId(1)));
        assert!(fs.get(FlowId(1)).is_err());
        assert_eq!(fs.get(FlowId(0)).unwrap().flow.name(), "voice");
        assert_eq!(fs.get(FlowId(2)).unwrap().flow.name(), "bulk");

        // The freed id is not reused: the next add gets a brand-new id.
        let voice2 = voip_flow(
            "voice2",
            VoiceCodec::G711,
            Time::from_millis(10.0),
            Time::ZERO,
        );
        let route = Route::new(&t, vec![n[0], n[2], n[3]]).unwrap();
        let id = fs.add(voice2, route, Priority(6));
        assert_eq!(id, FlowId(3));
        assert_eq!(fs.get(FlowId(3)).unwrap().flow.name(), "voice2");

        // Set-valued helpers keep working on the sparse id space.
        assert_eq!(fs.flows_on_link(n[2], n[3]).len(), 3);
        assert!(fs.hep(FlowId(2), n[2], n[3]).unwrap().contains(&FlowId(0)));
        assert!(matches!(
            fs.remove(FlowId(1)),
            Err(NetError::UnknownFlow(1))
        ));

        // Removing everything leaves a usable empty set.
        for id in fs.ids().collect::<Vec<_>>() {
            fs.remove(id).unwrap();
        }
        assert!(fs.is_empty());
    }

    #[test]
    fn removal_survives_a_serde_roundtrip() {
        let (_, mut fs, _) = setup();
        fs.remove(FlowId(0)).unwrap();
        let json = serde_json::to_string(&fs).unwrap();
        // The wire form is the bindings alone — files written before the
        // id counter existed parse identically.
        assert!(!json.contains("next_id"));
        let back: FlowSet = serde_json::from_str(&json).unwrap();
        assert_eq!(fs, back);
        // A file carrying the same id twice is rejected, not silently
        // adopted into a set whose binary-search accessors would misfire.
        let twin = {
            let mut fs = fs.clone();
            let duplicate = fs.get(FlowId(2)).unwrap().clone();
            fs.bindings.push(duplicate);
            serde_json::to_string(&fs).unwrap()
        };
        let err = serde_json::from_str::<FlowSet>(&twin).unwrap_err();
        assert!(err.to_string().contains("duplicate flow id"), "{err}");
        // The monotone id counter round-trips too: the next id is fresh.
        let mut back = back;
        let bulk = cbr_flow(
            "later",
            1_000,
            Time::from_millis(50.0),
            Time::from_millis(200.0),
            Time::ZERO,
        );
        let route = back.get(FlowId(1)).unwrap().route.clone();
        assert_eq!(back.add(bulk, route, Priority(3)), FlowId(3));
    }

    #[test]
    fn empty_set_priority_assignment_is_a_noop() {
        let mut fs = FlowSet::new();
        fs.assign_priorities(PriorityPolicy::DeadlineMonotonic { levels: 4 });
        assert!(fs.is_empty());
        assert!(fs.used_links().is_empty());
    }
}
