//! Route computation.
//!
//! The paper assumes the route of every flow is pre-specified by the
//! operator; in practice routes in a switched Ethernet follow the spanning
//! tree / shortest path between the endpoints.  This module offers two
//! deterministic route generators:
//!
//! * [`shortest_path`] — minimum hop count (ties broken towards lower node
//!   ids, so results are reproducible),
//! * [`fastest_path`] — minimum sum of per-hop latency proxies
//!   (propagation delay + one maximum-size-frame transmission time), which
//!   prefers fast links when hop counts tie.
//!
//! Both only allow Ethernet switches as intermediate nodes, matching the
//! paper's assumption that IP routers never forward inside the analysed
//! network.

use crate::error::NetError;
use crate::flowset::FlowSet;
use crate::node::NodeId;
use crate::route::Route;
use crate::survivor::SurvivorView;
use crate::topology::Topology;
use gmf_model::FlowId;
use std::collections::{BinaryHeap, VecDeque};

/// Compute the route with the fewest hops from `src` to `dst`.
///
/// Intermediate nodes must be switches; `src` and `dst` may be any node
/// kind.  Ties are broken deterministically by exploring lower-numbered
/// neighbours first.
pub fn shortest_path(topology: &Topology, src: NodeId, dst: NodeId) -> Result<Route, NetError> {
    topology.node(src)?;
    topology.node(dst)?;
    if src == dst {
        return Err(NetError::RouteTooShort);
    }

    let n = topology.n_nodes();
    let mut predecessor: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[src.0] = true;
    queue.push_back(src);

    while let Some(current) = queue.pop_front() {
        if current == dst {
            break;
        }
        // Forwarding through a non-switch node is only allowed if that node
        // is the source itself.
        if current != src && !topology.node(current)?.is_switch() {
            continue;
        }
        let mut neighbours: Vec<NodeId> = topology.out_neighbours(current).to_vec();
        neighbours.sort_unstable();
        for next in neighbours {
            if !visited[next.0] {
                visited[next.0] = true;
                predecessor[next.0] = Some(current);
                queue.push_back(next);
            }
        }
    }

    reconstruct(predecessor, src, dst)
}

/// Compute the route minimising the sum of per-hop latency proxies
/// (propagation + MFT of each traversed link).
pub fn fastest_path(topology: &Topology, src: NodeId, dst: NodeId) -> Result<Route, NetError> {
    topology.node(src)?;
    topology.node(dst)?;
    if src == dst {
        return Err(NetError::RouteTooShort);
    }

    #[derive(PartialEq)]
    struct Entry {
        cost: f64, // tidy-allow: float Dijkstra edge cost, not a schedulability bound
        node: NodeId,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; break ties on node id for determinism.
            other
                .cost
                .partial_cmp(&self.cost)
                // tidy-allow: unwrap invariant: link costs are finite
                .expect("link costs are finite")
                .then_with(|| other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = topology.n_nodes();
    let mut dist = vec![f64::INFINITY; n]; // tidy-allow: float Dijkstra distance table, not a bound
    let mut predecessor: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        node: src,
    });

    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > dist[node.0] {
            continue;
        }
        if node == dst {
            break;
        }
        if node != src && !topology.node(node)?.is_switch() {
            continue;
        }
        for &next in topology.out_neighbours(node) {
            let link = topology.link_between(node, next)?;
            let hop_cost = link.propagation.as_secs() + link.mft().as_secs();
            let candidate = cost + hop_cost;
            if candidate < dist[next.0] {
                dist[next.0] = candidate;
                predecessor[next.0] = Some(node);
                heap.push(Entry {
                    cost: candidate,
                    node: next,
                });
            }
        }
    }

    reconstruct(predecessor, src, dst)
}

/// The fate of one severed flow after re-routing over the survivor network.
#[derive(Debug, Clone, PartialEq)]
pub enum RerouteOutcome {
    /// A replacement route exists: the flow can be re-admitted over it.
    Rerouted {
        /// The severed flow.
        id: FlowId,
        /// Its shortest-path fallback route on the survivor.
        route: Route,
    },
    /// The survivor no longer connects the flow's endpoints.
    Stranded {
        /// The severed flow.
        id: FlowId,
        /// Why no route exists (typically [`NetError::NoRoute`]).
        reason: NetError,
    },
}

impl RerouteOutcome {
    /// The severed flow this outcome is about.
    pub fn id(&self) -> FlowId {
        match self {
            RerouteOutcome::Rerouted { id, .. } | RerouteOutcome::Stranded { id, .. } => *id,
        }
    }

    /// `true` if the flow could not be re-routed.
    pub fn is_stranded(&self) -> bool {
        matches!(self, RerouteOutcome::Stranded { .. })
    }

    /// The fallback route, if one was found.
    pub fn route(&self) -> Option<&Route> {
        match self {
            RerouteOutcome::Rerouted { route, .. } => Some(route),
            RerouteOutcome::Stranded { .. } => None,
        }
    }
}

/// Re-route every severed flow (route crossing a failed cable) over the
/// survivor topology with the deterministic [`shortest_path`] fallback.
///
/// Returns one [`RerouteOutcome`] per severed flow in ascending flow-id
/// order; flows whose routes survive — including flows that merely traverse a
/// dirty node and only need re-analysis — are not listed.
pub fn reroute_severed(survivor: &SurvivorView, flows: &FlowSet) -> Vec<RerouteOutcome> {
    survivor
        .severed_flows(flows)
        .into_iter()
        .map(|id| {
            let binding = flows
                .get(id)
                // tidy-allow: unwrap invariant: severed_flows only returns ids present in the set
                .expect("severed flow id comes from the same flow set");
            match shortest_path(survivor.topology(), binding.source(), binding.destination()) {
                Ok(route) => RerouteOutcome::Rerouted { id, route },
                Err(reason) => RerouteOutcome::Stranded { id, reason },
            }
        })
        .collect()
}

fn reconstruct(
    predecessor: Vec<Option<NodeId>>,
    src: NodeId,
    dst: NodeId,
) -> Result<Route, NetError> {
    if predecessor[dst.0].is_none() {
        return Err(NetError::NoRoute(src, dst));
    }
    let mut nodes = vec![dst];
    let mut current = dst;
    while current != src {
        current = predecessor[current.0].ok_or(NetError::NoRoute(src, dst))?;
        nodes.push(current);
    }
    nodes.reverse();
    Ok(Route::from_nodes_unchecked(nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;
    use crate::node::SwitchConfig;

    /// A diamond: h0 - s1 - s3 - h4 and h0 - s2 - s3 - h4, where the upper
    /// path (via s1) uses slow links and the lower (via s2) fast links.
    /// Also an end host h5 hanging off s1 and an isolated host h6.
    fn topo() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let s1 = t.add_switch(SwitchConfig::paper(), "s1");
        let s2 = t.add_switch(SwitchConfig::paper(), "s2");
        let s3 = t.add_switch(SwitchConfig::paper(), "s3");
        let h4 = t.add_end_host("h4");
        let h5 = t.add_end_host("h5");
        let h6 = t.add_end_host("h6");
        t.add_duplex_link(h0, s1, LinkProfile::ethernet_10m())
            .unwrap();
        t.add_duplex_link(h0, s2, LinkProfile::ethernet_1g())
            .unwrap();
        t.add_duplex_link(s1, s3, LinkProfile::ethernet_10m())
            .unwrap();
        t.add_duplex_link(s2, s3, LinkProfile::ethernet_1g())
            .unwrap();
        t.add_duplex_link(s3, h4, LinkProfile::ethernet_1g())
            .unwrap();
        t.add_duplex_link(s1, h5, LinkProfile::ethernet_100m())
            .unwrap();
        (t, vec![h0, s1, s2, s3, h4, h5, h6])
    }

    #[test]
    fn shortest_path_finds_min_hops() {
        let (t, n) = topo();
        let r = shortest_path(&t, n[0], n[4]).unwrap();
        assert_eq!(r.n_hops(), 3);
        assert_eq!(r.source(), n[0]);
        assert_eq!(r.destination(), n[4]);
        // Deterministic tie-break: via the lower-numbered switch s1.
        assert_eq!(r.nodes()[1], n[1]);
    }

    #[test]
    fn fastest_path_prefers_fast_links() {
        let (t, n) = topo();
        let r = fastest_path(&t, n[0], n[4]).unwrap();
        assert_eq!(r.n_hops(), 3);
        // The gigabit path goes via s2.
        assert_eq!(r.nodes()[1], n[2]);
    }

    #[test]
    fn paths_do_not_forward_through_end_hosts() {
        let (t, n) = topo();
        // h5 is only reachable via s1; a path from h5 to h4 must not try to
        // go "through" h0.
        let r = shortest_path(&t, n[5], n[4]).unwrap();
        assert!(r.nodes().iter().all(|&x| x != n[0]));
        let r = fastest_path(&t, n[5], n[4]).unwrap();
        assert!(r.nodes().iter().all(|&x| x != n[0]));
    }

    #[test]
    fn unreachable_and_degenerate_cases() {
        let (t, n) = topo();
        assert!(matches!(
            shortest_path(&t, n[0], n[6]),
            Err(NetError::NoRoute(_, _))
        ));
        assert!(matches!(
            fastest_path(&t, n[0], n[6]),
            Err(NetError::NoRoute(_, _))
        ));
        assert!(matches!(
            shortest_path(&t, n[0], n[0]),
            Err(NetError::RouteTooShort)
        ));
        assert!(matches!(
            fastest_path(&t, n[0], n[0]),
            Err(NetError::RouteTooShort)
        ));
        assert!(shortest_path(&t, n[0], NodeId(99)).is_err());
    }

    #[test]
    fn reroute_severed_finds_fallback_or_strands() {
        use crate::flowset::{FlowSet, Priority};
        use gmf_model::Time;
        let (mut t, n) = topo();
        let mut flows = FlowSet::new();
        let flow = gmf_model::voip_flow(
            "f",
            gmf_model::VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(1.0),
        );
        // f0: h0 -> s1 -> s3 -> h4 (severed by s1-s3, reroutable via s2).
        let r0 = shortest_path(&t, n[0], n[4]).unwrap();
        let f0 = flows.add(flow.clone(), r0, Priority(3));
        // f1: h5 -> s1 -> h0 — untouched by the failure.
        let r1 = shortest_path(&t, n[5], n[0]).unwrap();
        flows.add(flow.clone(), r1, Priority(3));
        t.fail_link(n[1], n[3]).unwrap();
        let view = t.survivor();
        let outcomes = reroute_severed(&view, &flows);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].id(), f0);
        assert!(!outcomes[0].is_stranded());
        let fallback = outcomes[0].route().unwrap();
        assert_eq!(fallback.nodes()[1], n[2]);
        assert!(view.route_survives(fallback));

        // Fail the spare path too: the flow is stranded.
        t.fail_link(n[0], n[2]).unwrap();
        let view = t.survivor();
        let outcomes = reroute_severed(&view, &flows);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].is_stranded());
        assert!(matches!(
            outcomes[0],
            RerouteOutcome::Stranded {
                reason: NetError::NoRoute(_, _),
                ..
            }
        ));
    }

    #[test]
    fn produced_routes_validate() {
        let (t, n) = topo();
        for dst in [n[4], n[5]] {
            let r = shortest_path(&t, n[0], dst).unwrap();
            // Re-validating through the public constructor must succeed.
            assert!(Route::new(&t, r.nodes().to_vec()).is_ok());
            let r = fastest_path(&t, n[0], dst).unwrap();
            assert!(Route::new(&t, r.nodes().to_vec()).is_ok());
        }
    }
}
