//! The network topology: a directed graph of nodes and links.
//!
//! The topology is the static description of the network the operator
//! manages: which nodes exist, what kind they are, and which directed links
//! connect them (with their bit rates and propagation delays).  The number
//! of network interfaces of a switch — `NINTERFACES(N)`, which determines
//! the stride-scheduling round length `CIRC(N)` — is derived from the
//! topology as the number of distinct neighbours of the node.

use crate::error::NetError;
use crate::link::{Link, LinkId, LinkProfile};
use crate::node::{Node, NodeId, NodeKind, SwitchConfig};
use crate::survivor::SurvivorView;
use gmf_model::{BitRate, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A directed multigraph-free network graph.
///
/// Serialization only stores the nodes and links; the lookup indexes are
/// rebuilt on deserialization.  The failure overlay ([`Topology::fail_link`],
/// [`Topology::degrade_switch`]) is *transient* operational state and is
/// deliberately dropped by serialization: a persisted topology always
/// describes the installed hardware.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "TopologySerde", into = "TopologySerde")]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Map from (src, dst) to the link index, for O(log n) lookup.
    by_endpoints: BTreeMap<(NodeId, NodeId), LinkId>,
    /// Outgoing neighbours of every node.
    out_neighbours: Vec<Vec<NodeId>>,
    /// Incoming neighbours of every node.
    in_neighbours: Vec<Vec<NodeId>>,
    /// Failure overlay: failed full-duplex cables, keyed by unordered
    /// endpoint pair `(min, max)`.  The base graph above stays untouched.
    failed: BTreeSet<(NodeId, NodeId)>,
    /// Failure overlay: degraded switch CPU configurations that override the
    /// installed [`SwitchConfig`] until [`Topology::restore`].
    degraded: BTreeMap<NodeId, SwitchConfig>,
}

/// Normalise a cable's endpoint pair to the unordered `(min, max)` key used
/// by the failure overlay.
pub(crate) fn cable_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Plain serialized form of a [`Topology`]: nodes and links only.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TopologySerde {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl From<Topology> for TopologySerde {
    fn from(t: Topology) -> Self {
        TopologySerde {
            nodes: t.nodes,
            links: t.links,
        }
    }
}

impl From<TopologySerde> for Topology {
    fn from(s: TopologySerde) -> Self {
        let mut t = Topology::new();
        for node in &s.nodes {
            t.add_node(node.kind, node.name.clone());
        }
        for link in &s.links {
            t.add_link(link.src, link.dst, link.speed, link.propagation)
                // tidy-allow: unwrap invariant: serialized topology contains a malformed link
                .expect("serialized topology contains a malformed link");
        }
        t
    }
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node of the given kind; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        self.out_neighbours.push(Vec::new());
        self.in_neighbours.push(Vec::new());
        id
    }

    /// Add an IP end host.
    pub fn add_end_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::EndHost, name)
    }

    /// Add a software Ethernet switch.
    pub fn add_switch(&mut self, config: SwitchConfig, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch(config), name)
    }

    /// Add an IP router.
    pub fn add_router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Router, name)
    }

    /// Add a directed link from `src` to `dst`.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        speed: BitRate,
        propagation: Time,
    ) -> Result<LinkId, NetError> {
        if src == dst {
            return Err(NetError::SelfLoop(src));
        }
        self.check_node(src)?;
        self.check_node(dst)?;
        if self.by_endpoints.contains_key(&(src, dst)) {
            return Err(NetError::DuplicateLink(src, dst));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            id,
            src,
            dst,
            speed,
            propagation,
        });
        self.by_endpoints.insert((src, dst), id);
        self.out_neighbours[src.0].push(dst);
        self.in_neighbours[dst.0].push(src);
        Ok(id)
    }

    /// Add both directions of a full-duplex cable with identical parameters;
    /// returns the two link ids `(src→dst, dst→src)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        profile: LinkProfile,
    ) -> Result<(LinkId, LinkId), NetError> {
        let ab = self.add_link(a, b, profile.speed, profile.propagation)?;
        let ba = self.add_link(b, a, profile.speed, profile.propagation)?;
        Ok((ab, ba))
    }

    fn check_node(&self, id: NodeId) -> Result<(), NetError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(id))
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, NetError> {
        self.nodes.get(id.0).ok_or(NetError::UnknownNode(id))
    }

    /// Look up the directed link from `src` to `dst`.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Result<&Link, NetError> {
        self.by_endpoints
            .get(&(src, dst))
            .map(|id| &self.links[id.0])
            .ok_or(NetError::NoSuchLink(src, dst))
    }

    /// `true` if a directed link from `src` to `dst` exists.
    pub fn has_link(&self, src: NodeId, dst: NodeId) -> bool {
        self.by_endpoints.contains_key(&(src, dst))
    }

    /// Outgoing neighbours of a node.
    pub fn out_neighbours(&self, id: NodeId) -> &[NodeId] {
        &self.out_neighbours[id.0]
    }

    /// Incoming neighbours of a node.
    pub fn in_neighbours(&self, id: NodeId) -> &[NodeId] {
        &self.in_neighbours[id.0]
    }

    /// `NINTERFACES(N)`: the number of network interfaces of a node,
    /// i.e. the number of distinct neighbours it has a link to or from
    /// (a full-duplex cable counts as one interface).
    pub fn n_interfaces(&self, id: NodeId) -> usize {
        let mut neighbours: Vec<NodeId> = self.out_neighbours[id.0]
            .iter()
            .chain(self.in_neighbours[id.0].iter())
            .copied()
            .collect();
        neighbours.sort_unstable();
        neighbours.dedup();
        neighbours.len()
    }

    /// `CIRC(N)` for a switch node: the round length of its stride scheduler
    /// given its interface count.  Returns an error for non-switch nodes.
    pub fn circ(&self, id: NodeId) -> Result<Time, NetError> {
        let node = self.node(id)?;
        match &node.kind {
            NodeKind::Switch(cfg) => Ok(cfg.circ(self.n_interfaces(id))),
            _ => Err(NetError::RouteThroughNonSwitch(id)),
        }
    }

    /// The switch configuration of a node, if it is a switch.
    pub fn switch_config(&self, id: NodeId) -> Option<&SwitchConfig> {
        self.nodes.get(id.0).and_then(|n| n.kind.switch_config())
    }

    /// Ids of all switch nodes.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_switch())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all end hosts and routers (possible flow endpoints).
    pub fn endpoints(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| !n.is_switch())
            .map(|n| n.id)
            .collect()
    }

    /// Mark the full-duplex cable between `a` and `b` as failed.
    ///
    /// Both directions go down together (a cable fault takes out the whole
    /// duplex pair).  The base graph — and therefore every accessor above,
    /// which describes the *installed* hardware — is untouched; the failure
    /// only becomes visible through [`Topology::survivor`].  Errors:
    /// [`NetError::NoSuchLink`] if no link exists in either direction, and
    /// [`NetError::LinkAlreadyFailed`] if the cable is already failed.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> Result<(), NetError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !self.by_endpoints.contains_key(&(a, b)) && !self.by_endpoints.contains_key(&(b, a)) {
            return Err(NetError::NoSuchLink(a, b));
        }
        if !self.failed.insert(cable_key(a, b)) {
            return Err(NetError::LinkAlreadyFailed(a, b));
        }
        Ok(())
    }

    /// Override the CPU configuration of switch `id` with a degraded one
    /// (e.g. a thermally throttled or half-provisioned processor).
    ///
    /// Returns the configuration that was effective before this call.  The
    /// installed configuration is untouched and comes back on
    /// [`Topology::restore`].  Errors with [`NetError::NotASwitch`] for end
    /// hosts and routers.
    pub fn degrade_switch(
        &mut self,
        id: NodeId,
        config: SwitchConfig,
    ) -> Result<SwitchConfig, NetError> {
        let node = self.node(id)?;
        let installed = match &node.kind {
            NodeKind::Switch(cfg) => *cfg,
            _ => return Err(NetError::NotASwitch(id)),
        };
        let previous = self.degraded.insert(id, config).unwrap_or(installed);
        Ok(previous)
    }

    /// Clear the whole failure overlay: every failed cable comes back up and
    /// every degraded switch returns to its installed configuration.
    pub fn restore(&mut self) {
        self.failed.clear();
        self.degraded.clear();
    }

    /// `true` if the cable between `a` and `b` is currently failed
    /// (direction-insensitive).
    pub fn is_failed(&self, a: NodeId, b: NodeId) -> bool {
        self.failed.contains(&cable_key(a, b))
    }

    /// The currently failed cables as unordered `(min, max)` endpoint pairs,
    /// in ascending order.
    pub fn failed_cables(&self) -> Vec<(NodeId, NodeId)> {
        self.failed.iter().copied().collect()
    }

    /// The currently degraded switches with their effective (degraded)
    /// configurations, in ascending node order.
    pub fn degraded_switches(&self) -> Vec<(NodeId, SwitchConfig)> {
        self.degraded.iter().map(|(id, cfg)| (*id, *cfg)).collect()
    }

    /// `true` if any cable is failed or any switch degraded.
    pub fn has_faults(&self) -> bool {
        !self.failed.is_empty() || !self.degraded.is_empty()
    }

    /// Materialise the surviving network: a fresh [`Topology`] with the same
    /// node ids, failed cables removed and degraded switch configurations
    /// applied, wrapped in a [`SurvivorView`] that records which nodes'
    /// analysis-relevant parameters changed.
    ///
    /// Node ids are preserved verbatim (failed cables leave their endpoints
    /// in place, possibly isolated), so routes and flow sets can be
    /// re-validated against the survivor unchanged.  Link ids may be
    /// renumbered — everything downstream keys links by their
    /// `(NodeId, NodeId)` endpoints, never by [`LinkId`].
    pub fn survivor(&self) -> SurvivorView {
        let mut topology = Topology::new();
        for node in &self.nodes {
            let kind = match (&node.kind, self.degraded.get(&node.id)) {
                (NodeKind::Switch(_), Some(degraded)) => NodeKind::Switch(*degraded),
                (kind, _) => *kind,
            };
            topology.add_node(kind, node.name.clone());
        }
        for link in &self.links {
            if self.failed.contains(&cable_key(link.src, link.dst)) {
                continue;
            }
            topology
                .add_link(link.src, link.dst, link.speed, link.propagation)
                // tidy-allow: unwrap invariant: base topology links are well-formed
                .expect("base topology links are well-formed");
        }
        // Dirty nodes: every endpoint of a failed cable (its interface count
        // and hence CIRC changed) plus every degraded switch.
        let mut dirty: Vec<NodeId> = self
            .failed
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain(self.degraded.keys().copied())
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        SurvivorView::new(
            topology,
            self.failed.iter().copied().collect(),
            self.degraded.keys().copied().collect(),
            dirty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let sw = t.add_switch(SwitchConfig::paper(), "sw");
        let h1 = t.add_end_host("h1");
        t.add_duplex_link(h0, sw, LinkProfile::ethernet_10m())
            .unwrap();
        t.add_duplex_link(sw, h1, LinkProfile::ethernet_100m())
            .unwrap();
        (t, h0, sw, h1)
    }

    #[test]
    fn build_and_query() {
        let (t, h0, sw, h1) = small();
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.n_links(), 4);
        assert!(t.has_link(h0, sw));
        assert!(t.has_link(sw, h0));
        assert!(!t.has_link(h0, h1));
        assert_eq!(t.link_between(h0, sw).unwrap().speed.as_mbps(), 10.0);
        assert_eq!(t.link_between(sw, h1).unwrap().speed.as_mbps(), 100.0);
        assert!(matches!(
            t.link_between(h0, h1),
            Err(NetError::NoSuchLink(_, _))
        ));
        assert_eq!(t.out_neighbours(sw).len(), 2);
        assert_eq!(t.in_neighbours(sw).len(), 2);
        assert_eq!(t.node(h1).unwrap().name, "h1");
        assert!(matches!(t.node(NodeId(9)), Err(NetError::UnknownNode(_))));
        assert_eq!(t.switches(), vec![sw]);
        assert_eq!(t.endpoints(), vec![h0, h1]);
    }

    #[test]
    fn n_interfaces_counts_distinct_neighbours() {
        let (t, h0, sw, _) = small();
        assert_eq!(t.n_interfaces(sw), 2);
        assert_eq!(t.n_interfaces(h0), 1);
    }

    #[test]
    fn circ_uses_interface_count() {
        let (t, h0, sw, _) = small();
        // 2 interfaces × 3.7 µs.
        assert!(t.circ(sw).unwrap().approx_eq(Time::from_micros(7.4)));
        assert!(matches!(
            t.circ(h0),
            Err(NetError::RouteThroughNonSwitch(_))
        ));
    }

    #[test]
    fn rejects_self_loop_duplicate_and_unknown() {
        let (mut t, h0, sw, _) = small();
        assert!(matches!(
            t.add_link(h0, h0, BitRate::from_mbps(10.0), Time::ZERO),
            Err(NetError::SelfLoop(_))
        ));
        assert!(matches!(
            t.add_link(h0, sw, BitRate::from_mbps(10.0), Time::ZERO),
            Err(NetError::DuplicateLink(_, _))
        ));
        assert!(matches!(
            t.add_link(h0, NodeId(77), BitRate::from_mbps(10.0), Time::ZERO),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn router_nodes_are_endpoints() {
        let mut t = Topology::new();
        let r = t.add_router("gw");
        assert_eq!(t.endpoints(), vec![r]);
        assert!(t.switch_config(r).is_none());
    }

    #[test]
    fn serde_roundtrip() {
        // JSON round-trips of floating-point times are only guaranteed to a
        // relative 1e-12, so compare structure and values approximately
        // rather than bit-for-bit.
        let (t, h0, sw, _) = small();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_nodes(), t.n_nodes());
        assert_eq!(back.n_links(), t.n_links());
        assert_eq!(back.nodes(), t.nodes());
        assert!(back.has_link(h0, sw));
        let (a, b) = (
            t.link_between(h0, sw).unwrap(),
            back.link_between(h0, sw).unwrap(),
        );
        assert_eq!(a.speed.as_bps(), b.speed.as_bps());
        assert!(a.propagation.approx_eq(b.propagation));
        // The rebuilt indexes answer derived queries identically.
        assert_eq!(back.n_interfaces(sw), t.n_interfaces(sw));
    }
}
