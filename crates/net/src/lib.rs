//! # gmf-net
//!
//! The **multihop-network substrate** for the GMF schedulability analysis:
//! topologies of IP end hosts, software-implemented Ethernet switches and
//! IP routers; directed links with bit rates and propagation delays;
//! pre-specified routes; and flow sets with IEEE 802.1p priorities.
//!
//! The crate also provides the set-valued helpers the analysis needs —
//! `flows(N1,N2)`, `hep(τ_i, N1, N2)` and `lp(τ_i, N1, N2)` (paper
//! equations 2–3) — and reconstructions of the paper's example network
//! (Figure 1) plus synthetic topology generators for the experiments.
//!
//! ```
//! use gmf_net::prelude::*;
//! use gmf_model::prelude::*;
//!
//! // The paper's Figure 1 network and the Figure 2 route 0 -> 4 -> 6 -> 3.
//! let (topology, net) = paper_figure1();
//! let route = shortest_path(&topology, net.hosts[0], net.hosts[3]).unwrap();
//! assert_eq!(route.n_hops(), 3);
//!
//! // Bind the Figure 3 MPEG flow to that route at the highest priority.
//! let mut flows = FlowSet::new();
//! let video = paper_figure3_flow("video", Time::from_millis(100.0), Time::from_millis(1.0));
//! let id = flows.add(video, route, Priority::HIGHEST);
//! assert_eq!(flows.get(id).unwrap().source(), net.hosts[0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod builders;
pub mod components;
pub mod error;
pub mod flowset;
pub mod link;
pub mod node;
pub mod route;
pub mod routing;
pub mod survivor;
pub mod topology;

pub use builders::{
    line, paper_figure1, paper_figure1_with, propagation_for_distance, random_tree, star,
    PaperNetwork, PaperNetworkConfig,
};
pub use components::FlowComponents;
pub use error::NetError;
pub use flowset::{FlowBinding, FlowSet, LinkIndex, Priority, PriorityPolicy};
pub use link::{Link, LinkId, LinkProfile};
pub use node::{Node, NodeId, NodeKind, SwitchConfig};
pub use route::{Hop, Route};
pub use routing::{fastest_path, reroute_severed, shortest_path, RerouteOutcome};
pub use survivor::SurvivorView;
pub use topology::Topology;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::builders::{
        line, paper_figure1, paper_figure1_with, star, PaperNetwork, PaperNetworkConfig,
    };
    pub use crate::flowset::{FlowBinding, FlowSet, Priority, PriorityPolicy};
    pub use crate::link::{Link, LinkId, LinkProfile};
    pub use crate::node::{Node, NodeId, NodeKind, SwitchConfig};
    pub use crate::route::{Hop, Route};
    pub use crate::routing::{fastest_path, reroute_severed, shortest_path, RerouteOutcome};
    pub use crate::survivor::SurvivorView;
    pub use crate::topology::Topology;
}
