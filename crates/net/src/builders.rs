//! Canonical and synthetic topologies.
//!
//! [`paper_figure1`] reconstructs the example network of the paper's
//! Figure 1: four IP end hosts (nodes 0–3), three software Ethernet
//! switches (nodes 4–6) and one IP router (node 7) connecting the network
//! to the global Internet.  The figure does not label every cable, so the
//! wiring below is reconstructed from the constraints visible in the paper:
//!
//! * the example flow routes `0 → 4 → 6 → 3` (Figure 2), so host 0 attaches
//!   to switch 4, switch 4 connects to switch 6, and host 3 attaches to
//!   switch 6;
//! * Figure 5 (the internals of a switch) shows interfaces "from/to" nodes
//!   0, 1, 5 and 6 — that switch is node 4, so host 1 also attaches to
//!   switch 4 and switch 4 also connects to switch 5;
//! * the remaining endpoints (host 2 and router 7) attach to switch 5.
//!
//! Access links default to 10 Mbit/s (the speed used in the worked example
//! for `link(0,4)`); switch-to-switch and router links default to
//! 100 Mbit/s.  Both are configurable through [`PaperNetworkConfig`].
//!
//! The synthetic builders ([`line`], [`star`], [`random_tree`]) are used by
//! the workload generators and the scalability experiments.

use crate::link::LinkProfile;
use crate::node::{NodeId, SwitchConfig};
use crate::topology::Topology;
use gmf_model::Time;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Node ids of the paper's Figure 1 network, in the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperNetwork {
    /// IP end hosts 0–3.
    pub hosts: [NodeId; 4],
    /// Ethernet switches 4–6.
    pub switches: [NodeId; 3],
    /// The IP router (node 7).
    pub router: NodeId,
}

/// Link-speed configuration of the Figure 1 network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperNetworkConfig {
    /// Profile of the host/router access links (paper example: 10 Mbit/s).
    pub access: LinkProfile,
    /// Profile of the switch-to-switch links.
    pub backbone: LinkProfile,
    /// CPU parameters of every switch.
    pub switch: SwitchConfig,
}

impl Default for PaperNetworkConfig {
    fn default() -> Self {
        PaperNetworkConfig {
            access: LinkProfile::ethernet_10m(),
            backbone: LinkProfile::ethernet_100m(),
            switch: SwitchConfig::paper(),
        }
    }
}

/// Build the paper's Figure 1 network with the default link speeds.
pub fn paper_figure1() -> (Topology, PaperNetwork) {
    paper_figure1_with(PaperNetworkConfig::default())
}

/// Build the paper's Figure 1 network with explicit link speeds and switch
/// parameters.
pub fn paper_figure1_with(config: PaperNetworkConfig) -> (Topology, PaperNetwork) {
    let mut t = Topology::new();
    let h0 = t.add_end_host("host0");
    let h1 = t.add_end_host("host1");
    let h2 = t.add_end_host("host2");
    let h3 = t.add_end_host("host3");
    let s4 = t.add_switch(config.switch, "switch4");
    let s5 = t.add_switch(config.switch, "switch5");
    let s6 = t.add_switch(config.switch, "switch6");
    let r7 = t.add_router("router7");

    // Access links.
    t.add_duplex_link(h0, s4, config.access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    t.add_duplex_link(h1, s4, config.access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    t.add_duplex_link(h2, s5, config.access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    t.add_duplex_link(h3, s6, config.access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    // Backbone links (switch 4 connects to both other switches, matching
    // Figure 5's four interfaces: hosts 0 and 1, switches 5 and 6).
    t.add_duplex_link(s4, s5, config.backbone)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    t.add_duplex_link(s4, s6, config.backbone)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    // The IP router reaches the network through switch 5.
    t.add_duplex_link(r7, s5, config.backbone)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");

    (
        t,
        PaperNetwork {
            hosts: [h0, h1, h2, h3],
            switches: [s4, s5, s6],
            router: r7,
        },
    )
}

/// A line (chain) of `n_switches` switches with one end host attached to
/// each end: `hostA - sw_1 - sw_2 - … - sw_n - hostB`.
///
/// Returns the topology, the two hosts, and the switches in order.
pub fn line(
    n_switches: usize,
    access: LinkProfile,
    backbone: LinkProfile,
    switch: SwitchConfig,
) -> (Topology, NodeId, NodeId, Vec<NodeId>) {
    assert!(n_switches >= 1, "a line needs at least one switch");
    let mut t = Topology::new();
    let host_a = t.add_end_host("hostA");
    let mut switches = Vec::with_capacity(n_switches);
    for i in 0..n_switches {
        switches.push(t.add_switch(switch, format!("sw{i}")));
    }
    let host_b = t.add_end_host("hostB");
    t.add_duplex_link(host_a, switches[0], access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    for pair in switches.windows(2) {
        t.add_duplex_link(pair[0], pair[1], backbone)
            // tidy-allow: unwrap invariant: fresh topology
            .expect("fresh topology");
    }
    // tidy-allow: unwrap invariant: n_switches >= 1
    t.add_duplex_link(*switches.last().expect("n_switches >= 1"), host_b, access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    (t, host_a, host_b, switches)
}

/// A single switch with `n_hosts` end hosts attached (a star) — the classic
/// small-office deployment.
pub fn star(
    n_hosts: usize,
    access: LinkProfile,
    switch: SwitchConfig,
) -> (Topology, NodeId, Vec<NodeId>) {
    assert!(n_hosts >= 2, "a star needs at least two hosts");
    let mut t = Topology::new();
    let sw = t.add_switch(switch, "sw");
    let mut hosts = Vec::with_capacity(n_hosts);
    for i in 0..n_hosts {
        let h = t.add_end_host(format!("h{i}"));
        // tidy-allow: unwrap invariant: fresh topology
        t.add_duplex_link(h, sw, access).expect("fresh topology");
        hosts.push(h);
    }
    (t, sw, hosts)
}

/// A random tree of `n_switches` switches (each new switch attaches to a
/// uniformly chosen earlier switch) with `hosts_per_switch` end hosts on
/// every switch.  Trees are the natural shape of spanning-tree Ethernet.
///
/// Returns the topology, the switches and the hosts.
pub fn random_tree<R: Rng>(
    rng: &mut R,
    n_switches: usize,
    hosts_per_switch: usize,
    access: LinkProfile,
    backbone: LinkProfile,
    switch: SwitchConfig,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    assert!(n_switches >= 1);
    let mut t = Topology::new();
    let mut switches = Vec::with_capacity(n_switches);
    for i in 0..n_switches {
        let sw = t.add_switch(switch, format!("sw{i}"));
        if let Some(&parent) = switches[..i].choose(rng) {
            t.add_duplex_link(sw, parent, backbone)
                // tidy-allow: unwrap invariant: fresh topology
                .expect("fresh topology");
        }
        switches.push(sw);
    }
    let mut hosts = Vec::with_capacity(n_switches * hosts_per_switch);
    for (i, &sw) in switches.iter().enumerate() {
        for j in 0..hosts_per_switch {
            let h = t.add_end_host(format!("h{i}_{j}"));
            // tidy-allow: unwrap invariant: fresh topology
            t.add_duplex_link(h, sw, access).expect("fresh topology");
            hosts.push(h);
        }
    }
    (t, switches, hosts)
}

/// Propagation delay corresponding to a cable of `metres` metres
/// (signal speed ≈ 2×10⁸ m/s in copper or fibre).
// tidy-allow: float spec-input length in metres, converted to Time at the boundary
pub fn propagation_for_distance(metres: f64) -> Time {
    Time::from_secs(metres / 2.0e8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::routing::shortest_path;
    use rand::SeedableRng;

    #[test]
    fn paper_figure1_structure() {
        let (t, net) = paper_figure1();
        assert_eq!(t.n_nodes(), 8);
        // 7 duplex cables = 14 directed links.
        assert_eq!(t.n_links(), 14);
        // Switch 4 has exactly the four interfaces of Figure 5.
        assert_eq!(t.n_interfaces(net.switches[0]), 4);
        // The worked CIRC example: 4 × 3.7 µs = 14.8 µs.
        assert!(t
            .circ(net.switches[0])
            .unwrap()
            .approx_eq(Time::from_micros(14.8)));
        // The example route 0 -> 4 -> 6 -> 3 is valid.
        let route = Route::new(
            &t,
            vec![net.hosts[0], net.switches[0], net.switches[2], net.hosts[3]],
        );
        assert!(route.is_ok());
        // The access link 0 -> 4 runs at the worked example's 10 Mbit/s.
        assert_eq!(
            t.link_between(net.hosts[0], net.switches[0])
                .unwrap()
                .speed
                .as_mbps(),
            10.0
        );
        // The router reaches every host through the switches.
        let r = shortest_path(&t, net.router, net.hosts[3]).unwrap();
        assert!(r
            .nodes()
            .iter()
            .all(|n| *n == net.router || *n == net.hosts[3] || net.switches.contains(n)));
    }

    #[test]
    fn paper_figure1_shortest_route_matches_figure2() {
        let (t, net) = paper_figure1();
        let r = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        assert_eq!(
            r.nodes(),
            &[net.hosts[0], net.switches[0], net.switches[2], net.hosts[3]]
        );
    }

    #[test]
    fn line_topology() {
        let (t, a, b, switches) = line(
            4,
            LinkProfile::ethernet_100m(),
            LinkProfile::ethernet_1g(),
            SwitchConfig::paper(),
        );
        assert_eq!(switches.len(), 4);
        assert_eq!(t.n_nodes(), 6);
        let r = shortest_path(&t, a, b).unwrap();
        assert_eq!(r.n_hops(), 5);
        // End switches have 2 interfaces, middle switches 2 as well
        // (host+switch / switch+switch).
        assert_eq!(t.n_interfaces(switches[0]), 2);
        assert_eq!(t.n_interfaces(switches[1]), 2);
    }

    #[test]
    #[should_panic]
    fn line_requires_a_switch() {
        let _ = line(
            0,
            LinkProfile::ethernet_100m(),
            LinkProfile::ethernet_1g(),
            SwitchConfig::paper(),
        );
    }

    #[test]
    fn star_topology() {
        let (t, sw, hosts) = star(5, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        assert_eq!(hosts.len(), 5);
        assert_eq!(t.n_interfaces(sw), 5);
        let r = shortest_path(&t, hosts[0], hosts[4]).unwrap();
        assert_eq!(r.n_hops(), 2);
    }

    #[test]
    fn random_tree_is_connected_and_reproducible() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let (t, switches, hosts) = random_tree(
            &mut rng,
            6,
            2,
            LinkProfile::ethernet_100m(),
            LinkProfile::ethernet_1g(),
            SwitchConfig::paper(),
        );
        assert_eq!(switches.len(), 6);
        assert_eq!(hosts.len(), 12);
        // Every pair of hosts is connected.
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    assert!(shortest_path(&t, a, b).is_ok(), "{a} cannot reach {b}");
                }
            }
        }
        // Same seed, same topology.
        let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let (t2, ..) = random_tree(
            &mut rng2,
            6,
            2,
            LinkProfile::ethernet_100m(),
            LinkProfile::ethernet_1g(),
            SwitchConfig::paper(),
        );
        assert_eq!(t, t2);
    }

    #[test]
    fn propagation_helper() {
        // 1 km of fibre ≈ 5 µs.
        assert!(propagation_for_distance(1000.0).approx_eq(Time::from_micros(5.0)));
    }
}
