//! Routes: the pre-specified node sequence a flow traverses.
//!
//! In the paper every flow is associated with a fixed route from its source
//! (an end host or IP router) to its destination (an end host or IP
//! router).  The route traverses only Ethernet switches in between —
//! IP routers never forward inside the analysed network.  The analysis
//! walks the route resource by resource, so the central helpers here are
//! `succ(τ, N)` / `prec(τ, N)` (the successor / predecessor of a node on
//! the route) and the [`Route::hops`] decomposition into the pipeline of
//! resources of Figure 6.

use crate::error::NetError;
use crate::node::NodeId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A loop-free path through the topology.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    nodes: Vec<NodeId>,
}

/// One hop of a route: the directed link from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hop {
    /// Transmitting node of the hop.
    pub from: NodeId,
    /// Receiving node of the hop.
    pub to: NodeId,
}

impl Route {
    /// Build a route from an explicit node sequence, validating it against
    /// the topology:
    ///
    /// * at least two nodes,
    /// * no node visited twice,
    /// * every consecutive pair connected by a directed link,
    /// * every intermediate node is an Ethernet switch.
    pub fn new(topology: &Topology, nodes: Vec<NodeId>) -> Result<Self, NetError> {
        if nodes.len() < 2 {
            return Err(NetError::RouteTooShort);
        }
        for (i, &n) in nodes.iter().enumerate() {
            topology.node(n)?;
            if nodes[..i].contains(&n) {
                return Err(NetError::RouteRevisitsNode(n));
            }
        }
        for pair in nodes.windows(2) {
            if !topology.has_link(pair[0], pair[1]) {
                return Err(NetError::RouteMissingLink(pair[0], pair[1]));
            }
        }
        for &n in &nodes[1..nodes.len() - 1] {
            if !topology.node(n)?.is_switch() {
                return Err(NetError::RouteThroughNonSwitch(n));
            }
        }
        Ok(Route { nodes })
    }

    /// Build a route without validation.  Intended for internal use by the
    /// routing algorithms, which construct paths that are valid by
    /// construction.
    pub(crate) fn from_nodes_unchecked(nodes: Vec<NodeId>) -> Self {
        Route { nodes }
    }

    /// The node sequence, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The source node of the route.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node of the route.
    pub fn destination(&self) -> NodeId {
        // tidy-allow: unwrap invariant: routes have at least two nodes
        *self.nodes.last().expect("routes have at least two nodes")
    }

    /// Number of links traversed.
    pub fn n_hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The Ethernet switches traversed (all nodes except source and
    /// destination).
    pub fn switches(&self) -> &[NodeId] {
        &self.nodes[1..self.nodes.len() - 1]
    }

    /// `succ(τ, node)`: the node after `node` on the route.
    pub fn successor(&self, node: NodeId) -> Result<NodeId, NetError> {
        let idx = self.index_of(node)?;
        self.nodes
            .get(idx + 1)
            .copied()
            .ok_or(NetError::NodeNotOnRoute(node))
    }

    /// `prec(τ, node)`: the node before `node` on the route.
    pub fn predecessor(&self, node: NodeId) -> Result<NodeId, NetError> {
        let idx = self.index_of(node)?;
        if idx == 0 {
            Err(NetError::NodeNotOnRoute(node))
        } else {
            Ok(self.nodes[idx - 1])
        }
    }

    /// `true` if the route traverses (transmits on) the directed link
    /// `from → to`.
    pub fn uses_link(&self, from: NodeId, to: NodeId) -> bool {
        self.nodes
            .windows(2)
            .any(|pair| pair[0] == from && pair[1] == to)
    }

    /// `true` if `node` lies anywhere on the route.
    pub fn visits(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The links traversed, in order.
    pub fn hops(&self) -> impl Iterator<Item = Hop> + '_ {
        self.nodes.windows(2).map(|pair| Hop {
            from: pair[0],
            to: pair[1],
        })
    }

    fn index_of(&self, node: NodeId) -> Result<usize, NetError> {
        self.nodes
            .iter()
            .position(|&n| n == node)
            .ok_or(NetError::NodeNotOnRoute(node))
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{}", n.0)?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;
    use crate::node::SwitchConfig;

    /// h0 - sw1 - sw2 - h3, plus a stray host h4 attached to sw1.
    fn topo() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let s1 = t.add_switch(SwitchConfig::paper(), "s1");
        let s2 = t.add_switch(SwitchConfig::paper(), "s2");
        let h3 = t.add_end_host("h3");
        let h4 = t.add_end_host("h4");
        t.add_duplex_link(h0, s1, LinkProfile::ethernet_10m())
            .unwrap();
        t.add_duplex_link(s1, s2, LinkProfile::ethernet_100m())
            .unwrap();
        t.add_duplex_link(s2, h3, LinkProfile::ethernet_100m())
            .unwrap();
        t.add_duplex_link(s1, h4, LinkProfile::ethernet_10m())
            .unwrap();
        (t, vec![h0, s1, s2, h3, h4])
    }

    #[test]
    fn valid_route_accessors() {
        let (t, n) = topo();
        let r = Route::new(&t, vec![n[0], n[1], n[2], n[3]]).unwrap();
        assert_eq!(r.source(), n[0]);
        assert_eq!(r.destination(), n[3]);
        assert_eq!(r.n_hops(), 3);
        assert_eq!(r.switches(), &[n[1], n[2]]);
        assert_eq!(r.successor(n[0]).unwrap(), n[1]);
        assert_eq!(r.successor(n[2]).unwrap(), n[3]);
        assert_eq!(r.predecessor(n[2]).unwrap(), n[1]);
        assert!(r.uses_link(n[1], n[2]));
        assert!(!r.uses_link(n[2], n[1]));
        assert!(r.visits(n[1]));
        assert!(!r.visits(n[4]));
        let hops: Vec<Hop> = r.hops().collect();
        assert_eq!(hops.len(), 3);
        assert_eq!(
            hops[0],
            Hop {
                from: n[0],
                to: n[1]
            }
        );
        assert_eq!(
            r.to_string(),
            format!("{} -> {} -> {} -> {}", n[0].0, n[1].0, n[2].0, n[3].0)
        );
    }

    #[test]
    fn successor_predecessor_errors() {
        let (t, n) = topo();
        let r = Route::new(&t, vec![n[0], n[1], n[2], n[3]]).unwrap();
        // Destination has no successor, source has no predecessor, and a
        // node off the route has neither.
        assert!(r.successor(n[3]).is_err());
        assert!(r.predecessor(n[0]).is_err());
        assert!(r.successor(n[4]).is_err());
        assert!(r.predecessor(n[4]).is_err());
    }

    #[test]
    fn rejects_short_route() {
        let (t, n) = topo();
        assert!(matches!(
            Route::new(&t, vec![n[0]]),
            Err(NetError::RouteTooShort)
        ));
        assert!(matches!(
            Route::new(&t, vec![]),
            Err(NetError::RouteTooShort)
        ));
    }

    #[test]
    fn rejects_missing_link() {
        let (t, n) = topo();
        assert!(matches!(
            Route::new(&t, vec![n[0], n[2], n[3]]),
            Err(NetError::RouteMissingLink(_, _))
        ));
    }

    #[test]
    fn rejects_loop() {
        let (t, n) = topo();
        assert!(matches!(
            Route::new(&t, vec![n[0], n[1], n[0]]),
            Err(NetError::RouteRevisitsNode(_))
        ));
    }

    #[test]
    fn rejects_forwarding_through_end_host() {
        let (t, n) = topo();
        // h4 is an end host: it may terminate a route but not forward.
        assert!(Route::new(&t, vec![n[0], n[1], n[4]]).is_ok());
        // Build h0 -> s1 -> h4 is fine (h4 is destination); but a route that
        // tries to forward *through* h4 is rejected.  There is no link from
        // h4 to anything except s1, so use h3's side: s2 -> h3 -> ... cannot
        // even be expressed; instead check an end host in the middle.
        let bad = Route::new(&t, vec![n[1], n[4], n[1]]);
        assert!(bad.is_err());
    }

    #[test]
    fn rejects_unknown_node() {
        let (t, n) = topo();
        assert!(Route::new(&t, vec![n[0], NodeId(99)]).is_err());
    }
}
