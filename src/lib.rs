//! # gmfnet
//!
//! Facade crate of the **gmfnet** workspace — a reproduction of
//!
//! > B. Andersson, *"Schedulability Analysis of Generalized Multiframe
//! > Traffic on Multihop-Networks Comprising Software-Implemented
//! > Ethernet-Switches"*, IPP-HURRAY TR-080201 / IPPS 2008.
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them so downstream users can depend on a single package:
//!
//! | Re-export | Contents |
//! |-----------|----------|
//! | [`model`] (`gmf-model`) | GMF flows, generalized jitter, Ethernet packetization, request-bound functions |
//! | [`net`] (`gmf-net`) | topologies, links, routes, flow sets, 802.1p priorities |
//! | [`analysis`] (`gmf-analysis`) | per-resource and holistic response-time analysis, admission control, baselines |
//! | [`sim`] (`switch-sim`) | discrete-event simulator of Click-style software switches |
//! | [`workloads`] (`gmf-workloads`) | canonical scenarios, synthetic workload generators, parameter sweeps |
//!
//! ```
//! use gmfnet::prelude::*;
//!
//! // Reproduce the paper's worked example end to end.
//! let (scenario, _) = paper_scenario();
//! let report = analyze(&scenario.topology, &scenario.flows, &AnalysisConfig::paper()).unwrap();
//! assert!(report.schedulable);
//! ```
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record; the runnable
//! examples live in `examples/` and the experiment binaries in
//! `crates/bench/src/bin/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gmf_analysis as analysis;
pub use gmf_model as model;
pub use gmf_net as net;
pub use gmf_par as par;
pub use gmf_workloads as workloads;
pub use switch_sim as sim;

/// One-stop import for applications: the preludes of every crate plus the
/// most common workload entry points.
pub mod prelude {
    pub use gmf_analysis::prelude::*;
    pub use gmf_model::prelude::*;
    pub use gmf_net::prelude::*;
    pub use gmf_workloads::prelude::*;
    pub use switch_sim::prelude::*;
}
