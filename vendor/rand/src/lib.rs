//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`RngCore`], [`Rng::gen_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom`].
//!
//! The workspace builds without network access, so the real crates.io
//! `rand` cannot be fetched; this crate implements the same contracts
//! (uniformity, determinism under a fixed seed) with the same signatures.
//! It is **not** a drop-in statistical replacement for the real crate —
//! stream values differ — but every consumer in this repository only
//! relies on determinism and uniformity, not on exact stream values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u32`/`u64`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly random value of a supported type (`f64` in `[0, 1)`,
    /// full-width integers, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_uniform(rng, low, high, true)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span_minus_one = (high as u64).wrapping_sub(low as u64)
                    - if inclusive { 0 } else { 1 };
                if span_minus_one == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span_minus_one + 1;
                // Unbiased rejection sampling (Lemire's method simplified).
                let zone = u64::MAX - (u64::MAX % span) - 1;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (low as u64).wrapping_add(v % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Shift into the unsigned domain, sample, shift back.
                let offset = <$t>::MIN;
                let lo = (low as $u).wrapping_sub(offset as $u);
                let hi = (high as $u).wrapping_sub(offset as $u);
                let s = <$u>::sample_uniform(rng, lo, hi, inclusive);
                s.wrapping_add(offset as $u) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                // Uniform in [0, 1) scaled onto the range; the inclusive and
                // half-open cases coincide for floats in practice.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + (high - low) * unit;
                if v < low { low } else if v > high { high } else { v }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for every implementor here).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64, like the real
    /// `rand_core`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related random helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait on slices: random element choice and shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but fast mixing step, good enough for unit tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 1
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&b));
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = Counter(3);
        let items = [1, 2, 3, 4];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v = vec![1, 2, 3, 4, 5];
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }
}
