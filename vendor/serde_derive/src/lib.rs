//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace's
//! offline `serde` stand-in.
//!
//! Implemented directly over `proc_macro::TokenStream` (the registry crates
//! `syn`/`quote` are unavailable offline), which restricts the supported
//! input shapes to exactly what this repository uses:
//!
//! * non-generic structs with named fields;
//! * non-generic tuple structs with one field (newtypes);
//! * non-generic enums with unit, one-field tuple ("newtype") and
//!   named-field ("struct") variants;
//! * the container attribute `#[serde(from = "Type", into = "Type")]`.
//!
//! Anything else produces a `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// `struct Name { a: A, b: B }`
    NamedStruct { fields: Vec<String> },
    /// `struct Name(Inner);`
    Newtype,
    /// `struct Name;`
    UnitStruct,
    /// `enum Name { ... }`
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct { fields: Vec<String> },
}

struct Parsed {
    name: String,
    shape: Shape,
    /// `#[serde(from = "T")]`
    from: Option<String>,
    /// `#[serde(into = "T")]`
    into: Option<String>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    match code {
        Ok(c) => c.parse().unwrap_or_else(|e| {
            compile_error(&format!("serde_derive generated invalid code: {e}"))
        }),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let (from, into) = parse_outer_attrs(&tokens, &mut pos)?;

    // Visibility: `pub`, optionally followed by `(...)`.
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }

    let keyword = ident_at(&tokens, pos).ok_or("expected `struct` or `enum`")?;
    pos += 1;
    let name = ident_at(&tokens, pos).ok_or("expected type name")?;
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream())?,
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n == 1 {
                    Shape::Newtype
                } else {
                    return Err(format!(
                        "serde stand-in derive supports tuple structs with exactly one \
                         field; `{name}` has {n}"
                    ));
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err(format!("unrecognised struct body for `{name}`")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g.stream())?,
            },
            _ => return Err(format!("unrecognised enum body for `{name}`")),
        },
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };

    Ok(Parsed {
        name,
        shape,
        from,
        into,
    })
}

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// Consume leading `#[...]` attributes; extract `from`/`into` out of any
/// `#[serde(...)]` among them.
fn parse_outer_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
) -> Result<(Option<String>, Option<String>), String> {
    let mut from = None;
    let mut into = None;
    while matches!(&tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            return Err("malformed attribute".into());
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(&inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_attr(args.stream(), &mut from, &mut into)?;
            }
        }
        *pos += 2;
    }
    Ok((from, into))
}

/// Parse `from = "T", into = "T"` inside `#[serde(...)]`.
fn parse_serde_attr(
    stream: TokenStream,
    from: &mut Option<String>,
    into: &mut Option<String>,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => return Err(format!("unsupported #[serde] attribute token `{other}`")),
        };
        match key.as_str() {
            "from" | "into" => {
                if !matches!(&tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    return Err(format!("expected `=` after `{key}` in #[serde]"));
                }
                let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) else {
                    return Err(format!(
                        "expected string literal after `{key} =` in #[serde]"
                    ));
                };
                let raw = lit.to_string();
                let ty = raw.trim_matches('"').to_string();
                if key == "from" {
                    *from = Some(ty);
                } else {
                    *into = Some(ty);
                }
                i += 3;
            }
            other => {
                return Err(format!(
                    "the serde stand-in derive only supports #[serde(from, into)]; \
                     `{other}` is not implemented"
                ))
            }
        }
    }
    Ok(())
}

/// Parse `a: A, b: B, ...` — attribute- and visibility-tolerant, type
/// tokens skipped (the generated code never names field types).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and doc comments.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Skip visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            return Err(format!("expected field name, found `{}`", tokens[i]));
        };
        fields.push(id.to_string());
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!(
                "expected `:` after field `{}`",
                fields.last().unwrap()
            ));
        }
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Count top-level fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not introduce a new field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip variant attributes (doc comments, #[default], ...).
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(id) = &tokens[i] else {
            return Err(format!("expected variant name, found `{}`", tokens[i]));
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct {
                    fields: parse_named_fields(g.stream())?,
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    return Err(format!(
                        "serde stand-in derive supports tuple variants with exactly one \
                         field; `{name}` has {n}"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde stand-in derive does not support explicit discriminants (variant `{name}`)"
            ));
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ----------------------------------------------------------- generation

fn quoted_list(items: &[String]) -> String {
    items
        .iter()
        .map(|f| format!("{f:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_serialize(p: &Parsed) -> Result<String, String> {
    let name = &p.name;
    let body = if let Some(into) = &p.into {
        format!(
            "let __proxy: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::ser::Serialize::serialize(&__proxy, __serializer)"
        )
    } else {
        match &p.shape {
            Shape::NamedStruct { fields } => {
                let mut s = format!(
                    "let mut __st = ::serde::ser::Serializer::serialize_struct(__serializer, \
                     {name:?}, {})?;\n",
                    fields.len()
                );
                for f in fields {
                    s.push_str(&format!(
                        "::serde::ser::SerializeStruct::serialize_field(&mut __st, {f:?}, \
                         &self.{f})?;\n"
                    ));
                }
                s.push_str("::serde::ser::SerializeStruct::end(__st)");
                s
            }
            Shape::Newtype => format!(
                "::serde::ser::Serializer::serialize_newtype_struct(__serializer, {name:?}, \
                 &self.0)"
            ),
            Shape::UnitStruct => {
                format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, {name:?})")
            }
            Shape::Enum { variants } => {
                let mut arms = String::new();
                for (idx, v) in variants.iter().enumerate() {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "{name}::{vn} => ::serde::ser::Serializer::serialize_unit_variant(\
                             __serializer, {name:?}, {idx}u32, {vn:?}),\n"
                        )),
                        VariantKind::Newtype => arms.push_str(&format!(
                            "{name}::{vn}(__f0) => \
                             ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \
                             {name:?}, {idx}u32, {vn:?}, __f0),\n"
                        )),
                        VariantKind::Struct { fields } => {
                            let bindings = fields.join(", ");
                            let mut arm = format!(
                                "{name}::{vn} {{ {bindings} }} => {{\nlet mut __sv = \
                                 ::serde::ser::Serializer::serialize_struct_variant(__serializer, \
                                 {name:?}, {idx}u32, {vn:?}, {})?;\n",
                                fields.len()
                            );
                            for f in fields {
                                arm.push_str(&format!(
                                    "::serde::ser::SerializeStruct::serialize_field(&mut __sv, \
                                     {f:?}, {f})?;\n"
                                ));
                            }
                            arm.push_str("::serde::ser::SerializeStruct::end(__sv)\n},\n");
                            arms.push_str(&arm);
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    ))
}

fn gen_deserialize(p: &Parsed) -> Result<String, String> {
    let name = &p.name;
    let body = if let Some(from) = &p.from {
        format!(
            "let __proxy: {from} = ::serde::de::Deserialize::deserialize(__deserializer)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__proxy))"
        )
    } else {
        match &p.shape {
            Shape::NamedStruct { fields } => {
                let list = quoted_list(fields.as_slice());
                let mut s = format!(
                    "let mut __sa = ::serde::de::Deserializer::deserialize_struct(\
                     __deserializer, {name:?}, &[{list}])?;\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for f in fields {
                    s.push_str(&format!(
                        "{f}: ::serde::de::StructAccess::field(&mut __sa, {f:?})?,\n"
                    ));
                }
                s.push_str("})");
                s
            }
            Shape::Newtype => format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \
                 {name:?})?))"
            ),
            Shape::UnitStruct => format!(
                "::serde::de::Deserializer::deserialize_unit(__deserializer)?;\n\
                 ::std::result::Result::Ok({name})"
            ),
            Shape::Enum { variants } => {
                let vlist =
                    quoted_list(&variants.iter().map(|v| v.name.clone()).collect::<Vec<_>>());
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "{vn:?} => {{ ::serde::de::VariantAccess::unit(__access)?; \
                             ::std::result::Result::Ok({name}::{vn}) }}\n"
                        )),
                        VariantKind::Newtype => arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::de::VariantAccess::newtype(__access)?)),\n"
                        )),
                        VariantKind::Struct { fields } => {
                            let list = quoted_list(fields.as_slice());
                            let mut arm = format!(
                                "{vn:?} => {{\nlet mut __sa = \
                                 ::serde::de::VariantAccess::struct_variant(__access, \
                                 &[{list}])?;\n::std::result::Result::Ok({name}::{vn} {{\n"
                            );
                            for f in fields {
                                arm.push_str(&format!(
                                    "{f}: ::serde::de::StructAccess::field(&mut __sa, {f:?})?,\n"
                                ));
                            }
                            arm.push_str("})\n}\n");
                            arms.push_str(&arm);
                        }
                    }
                }
                format!(
                    "let (__variant, __access) = \
                     ::serde::de::Deserializer::deserialize_enum(__deserializer, {name:?}, \
                     &[{vlist}])?;\n\
                     match __variant.as_str() {{\n{arms}\
                     __other => ::std::result::Result::Err(\
                     <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"unknown variant `{{}}` of enum `{name}`\", __other))),\n}}"
                )
            }
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    ))
}
