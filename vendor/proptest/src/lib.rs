//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`Strategy`] trait with range / tuple / collection / [`prop_oneof!`]
//! strategies and `prop_map`, plus the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, chosen deliberately for an offline
//! reproduction workspace:
//!
//! * **No shrinking** — a failing case reports its seed and iteration
//!   instead of a minimized input.
//! * Failures panic immediately (`prop_assert!` behaves like `assert!`),
//!   which is what `cargo test` needs to mark the test failed.
//! * Case generation is deterministic: a fixed base seed is perturbed per
//!   iteration, so failures reproduce without a persistence file.
//!
//! The `PROPTEST_CASES` environment variable overrides the configured
//! number of cases, exactly like the real crate — CI uses it to pin the
//! test budget.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` overrides the configured
    /// value when set.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// Strategy picking uniformly among boxed alternatives; built by
/// [`prop_oneof!`].  Unlike the real crate this shim does not support the
/// `weight => strategy` form — every alternative is equally likely.
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// An empty choice set ([`prop_oneof!`] fills it).
    pub fn new() -> Self {
        OneOf {
            choices: Vec::new(),
        }
    }

    /// Add one alternative.
    pub fn add(&mut self, strategy: impl Strategy<Value = T> + 'static) {
        self.choices.push(Box::new(strategy));
    }
}

impl<T> Default for OneOf<T> {
    fn default() -> Self {
        OneOf::new()
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.choices.is_empty(), "prop_oneof! needs an alternative");
        let pick = rand::Rng::gen_range(rng, 0..self.choices.len());
        self.choices[pick].generate(rng)
    }
}

/// Build a [`OneOf`] strategy from a list of alternatives, all generating
/// the same value type.  Uniform choice only (no `weight =>` form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut __one_of = $crate::OneOf::new();
        $(__one_of.add($strategy);)+
        __one_of
    }};
}

/// A strategy producing one constant value (useful with `prop_map`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// The `prop::` namespace mirroring the real crate's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A length range for [`vec`]: built from `a..b` or `a..=b`.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }
        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                let (lo, hi) = r.into_inner();
                assert!(lo <= hi, "empty size range");
                SizeRange {
                    lo,
                    hi_inclusive: hi,
                }
            }
        }
        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// Strategy for `Vec<T>` with a random length in the given range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, OneOf,
        ProptestConfig, Strategy,
    };
}

/// Base seed for case generation; perturbed per iteration.
pub const BASE_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Build the RNG for one test case. Public because the [`proptest!`]
/// expansion calls it.
pub fn case_rng(case_index: u32) -> TestRng {
    TestRng::seed_from_u64(BASE_SEED ^ (u64::from(case_index).wrapping_mul(0xd134_2543_de82_ef95)))
}

/// Define property tests: a config header plus `fn name(x in strategy)`
/// items, mirroring the real `proptest!` macro.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __cases = __config.effective_cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::case_rng(__case);
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                    // The body runs once per case; prop_assert! panics on
                    // failure, which fails the #[test].
                    { $body }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Assert a condition inside a property (panics on failure, like
/// `assert!`, so `cargo test` reports the case as failed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(x in 1u64..100, (a, b) in (0.0f64..1.0, 5usize..=9)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((1u32..10, 0.0f64..1.0), 1..=5).prop_map(|pairs| {
            pairs.into_iter().map(|(n, f)| n as f64 + f).collect::<Vec<f64>>()
        })) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            for x in &v {
                prop_assert!((1.0..11.0).contains(x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_draws_from_every_alternative(
            v in prop::collection::vec(prop_oneof![Just(0u64), 1u64..10, 100u64..200], 32..=32)
        ) {
            for &x in &v {
                prop_assert!(x == 0 || (1..10).contains(&x) || (100..200).contains(&x));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let mut a = crate::case_rng(3);
        let mut b = crate::case_rng(3);
        assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
    }
}
