//! `serde::Deserializer` reading out of a [`Value`] tree.

use crate::{parse, Error, Result, Value};
use serde::de::{
    Deserialize, Deserializer, Error as _, MapAccess, SeqAccess, StructAccess, VariantAccess,
};

/// Deserializer over an owned [`Value`].
#[derive(Debug)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wrap a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }

    fn mismatch(&self, expected: &str) -> Error {
        Error::custom(format!("expected {expected}, found {}", self.value.kind()))
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    type SeqAccess = ValueSeqAccess;
    type MapAccess = ValueMapAccess;
    type StructAccess = ValueStructAccess;
    type VariantAccess = ValueVariantAccess;

    fn deserialize_bool(self) -> Result<bool> {
        match self.value {
            Value::Bool(b) => Ok(b),
            _ => Err(self.mismatch("boolean")),
        }
    }

    fn deserialize_i64(self) -> Result<i64> {
        match self.value {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Ok(n as i64)
            }
            _ => Err(self.mismatch("integer")),
        }
    }

    fn deserialize_u64(self) -> Result<u64> {
        match self.value {
            Value::Number(n)
                if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) =>
            {
                Ok(n as u64)
            }
            _ => Err(self.mismatch("unsigned integer")),
        }
    }

    fn deserialize_f64(self) -> Result<f64> {
        match self.value {
            Value::Number(n) => Ok(n),
            // Round-trip of non-finite floats (serialized as null).
            Value::Null => Ok(f64::NAN),
            _ => Err(self.mismatch("number")),
        }
    }

    fn deserialize_char(self) -> Result<char> {
        match &self.value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(self.mismatch("single-character string")),
        }
    }

    fn deserialize_string(self) -> Result<String> {
        match self.value {
            Value::String(s) => Ok(s),
            _ => Err(self.mismatch("string")),
        }
    }

    fn deserialize_unit(self) -> Result<()> {
        match self.value {
            Value::Null => Ok(()),
            _ => Err(self.mismatch("null")),
        }
    }

    fn deserialize_option<T: Deserialize<'de>>(self) -> Result<Option<T>> {
        match self.value {
            Value::Null => Ok(None),
            other => T::deserialize(ValueDeserializer::new(other)).map(Some),
        }
    }

    fn deserialize_newtype_struct<T: Deserialize<'de>>(self, _name: &'static str) -> Result<T> {
        T::deserialize(self)
    }

    fn deserialize_seq(self) -> Result<ValueSeqAccess> {
        match self.value {
            Value::Array(items) => Ok(ValueSeqAccess {
                items: items.into_iter(),
            }),
            _ => Err(self.mismatch("array")),
        }
    }

    fn deserialize_map(self) -> Result<ValueMapAccess> {
        match self.value {
            Value::Object(entries) => Ok(ValueMapAccess {
                entries: entries.into_iter(),
            }),
            _ => Err(self.mismatch("object")),
        }
    }

    fn deserialize_struct(
        self,
        name: &'static str,
        _fields: &'static [&'static str],
    ) -> Result<ValueStructAccess> {
        match self.value {
            Value::Object(entries) => Ok(ValueStructAccess {
                type_name: name,
                entries,
            }),
            _ => Err(self.mismatch("object")),
        }
    }

    fn deserialize_enum(
        self,
        name: &'static str,
        _variants: &'static [&'static str],
    ) -> Result<(String, ValueVariantAccess)> {
        match self.value {
            Value::String(variant) => Ok((variant, ValueVariantAccess { payload: None })),
            Value::Object(mut entries) => {
                if entries.len() != 1 {
                    return Err(Error::custom(format!(
                        "enum `{name}` expects a single-key object, found {} keys",
                        entries.len()
                    )));
                }
                let (variant, payload) = entries.remove(0);
                Ok((
                    variant,
                    ValueVariantAccess {
                        payload: Some(payload),
                    },
                ))
            }
            other => Err(Error::custom(format!(
                "expected enum `{name}` as string or single-key object, found {}",
                other.kind()
            ))),
        }
    }
}

/// Sequence access over an array.
pub struct ValueSeqAccess {
    items: std::vec::IntoIter<Value>,
}

impl<'de> SeqAccess<'de> for ValueSeqAccess {
    type Error = Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>> {
        match self.items.next() {
            Some(v) => T::deserialize(ValueDeserializer::new(v)).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

/// Map access over an object; non-string keys were serialized as compact
/// JSON text, so deserialize the key from the raw string first and fall
/// back to parsing it as JSON.
pub struct ValueMapAccess {
    entries: std::vec::IntoIter<(String, Value)>,
}

impl<'de> MapAccess<'de> for ValueMapAccess {
    type Error = Error;

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(&mut self) -> Result<Option<(K, V)>> {
        let Some((key, value)) = self.entries.next() else {
            return Ok(None);
        };
        let k = match K::deserialize(ValueDeserializer::new(Value::String(key.clone()))) {
            Ok(k) => k,
            Err(_) => {
                let parsed = parse::parse(&key)
                    .map_err(|e| Error::custom(format!("invalid map key `{key}`: {e}")))?;
                K::deserialize(ValueDeserializer::new(parsed))?
            }
        };
        let v = V::deserialize(ValueDeserializer::new(value))?;
        Ok(Some((k, v)))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }
}

/// Named-field access over an object.
pub struct ValueStructAccess {
    type_name: &'static str,
    entries: Vec<(String, Value)>,
}

impl<'de> StructAccess<'de> for ValueStructAccess {
    type Error = Error;

    fn field<T: Deserialize<'de>>(&mut self, name: &'static str) -> Result<T> {
        match self.entries.iter().position(|(k, _)| k == name) {
            Some(idx) => {
                let (_, value) = self.entries.swap_remove(idx);
                T::deserialize(ValueDeserializer::new(value))
            }
            None => Err(Error::custom(format!(
                "missing field `{name}` of `{}`",
                self.type_name
            ))),
        }
    }
}

/// Payload access for one enum variant.
pub struct ValueVariantAccess {
    payload: Option<Value>,
}

impl<'de> VariantAccess<'de> for ValueVariantAccess {
    type Error = Error;
    type StructAccess = ValueStructAccess;

    fn unit(self) -> Result<()> {
        match self.payload {
            None | Some(Value::Null) => Ok(()),
            Some(other) => Err(Error::custom(format!(
                "unit variant carries unexpected {} payload",
                other.kind()
            ))),
        }
    }

    fn newtype<T: Deserialize<'de>>(self) -> Result<T> {
        match self.payload {
            Some(v) => T::deserialize(ValueDeserializer::new(v)),
            None => Err(Error::custom("newtype variant is missing its payload")),
        }
    }

    fn struct_variant(self, _fields: &'static [&'static str]) -> Result<ValueStructAccess> {
        match self.payload {
            Some(Value::Object(entries)) => Ok(ValueStructAccess {
                type_name: "struct variant",
                entries,
            }),
            Some(other) => Err(Error::custom(format!(
                "struct variant expects an object payload, found {}",
                other.kind()
            ))),
            None => Err(Error::custom("struct variant is missing its payload")),
        }
    }
}
