//! `serde::Serializer` producing a [`Value`] tree.

use crate::{print, Error, Result, Value};
use serde::ser::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};

/// Serializer whose output is a [`Value`].
pub(crate) struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqCollector;
    type SerializeMap = MapCollector;
    type SerializeStruct = StructCollector;
    type SerializeStructVariant = VariantCollector;

    fn serialize_bool(self, v: bool) -> Result<Value> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value> {
        Ok(Value::Number(v as f64))
    }
    fn serialize_u64(self, v: u64) -> Result<Value> {
        Ok(Value::Number(v as f64))
    }
    fn serialize_f64(self, v: f64) -> Result<Value> {
        Ok(Value::Number(v))
    }
    fn serialize_char(self, v: char) -> Result<Value> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Value> {
        Ok(Value::String(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Value> {
        Ok(Value::Null)
    }
    fn serialize_none(self) -> Result<Value> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value> {
        value.serialize(ValueSerializer)
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Value> {
        Ok(Value::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value> {
        Ok(Value::String(variant.to_string()))
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value> {
        value.serialize(ValueSerializer)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value> {
        Ok(Value::Object(vec![(
            variant.to_string(),
            value.serialize(ValueSerializer)?,
        )]))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqCollector> {
        Ok(SeqCollector {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<MapCollector> {
        Ok(MapCollector {
            entries: Vec::with_capacity(len.unwrap_or(0)),
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructCollector> {
        Ok(StructCollector {
            fields: Vec::with_capacity(len),
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<VariantCollector> {
        Ok(VariantCollector {
            variant,
            fields: Vec::with_capacity(len),
        })
    }
}

/// Collects array elements.
pub(crate) struct SeqCollector {
    items: Vec<Value>,
}

impl SerializeSeq for SeqCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value> {
        Ok(Value::Array(self.items))
    }
}

/// Collects map entries, stringifying non-string keys as compact JSON.
pub(crate) struct MapCollector {
    entries: Vec<(String, Value)>,
}

impl SerializeMap for MapCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<()> {
        let key = match key.serialize(ValueSerializer)? {
            Value::String(s) => s,
            other => print::compact(&other),
        };
        self.entries.push((key, value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value> {
        Ok(Value::Object(self.entries))
    }
}

/// Collects struct fields.
pub(crate) struct StructCollector {
    fields: Vec<(String, Value)>,
}

impl SerializeStruct for StructCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<()> {
        self.fields
            .push((name.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value> {
        Ok(Value::Object(self.fields))
    }
}

/// Collects struct-variant fields; ends as `{"Variant": {...}}`.
pub(crate) struct VariantCollector {
    variant: &'static str,
    fields: Vec<(String, Value)>,
}

impl SerializeStruct for VariantCollector {
    type Ok = Value;
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<()> {
        self.fields
            .push((name.to_string(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value> {
        Ok(Value::Object(vec![(
            self.variant.to_string(),
            Value::Object(self.fields),
        )]))
    }
}
