//! Compact and pretty JSON printers.

use crate::Value;
use std::fmt::Write;

/// Render a number the way `serde_json` would: integers without a decimal
/// point, everything else via the shortest round-trip `f64` formatting.
pub(crate) fn number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; the real crate emits null for them
        // through `Value`.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

pub(crate) fn escape_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, value);
    out
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number(out, *n),
        Value::String(s) => escape_str(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_str(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(out: &mut String, value: &Value, level: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_pretty(out, item, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                escape_str(out, k);
                out.push_str(": ");
                write_pretty(out, v, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}
