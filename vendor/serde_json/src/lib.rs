//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Value`], [`Error`]
//! and [`Result`].
//!
//! JSON representation conventions match the real crate: structs are
//! objects, newtype structs are their inner value, unit enum variants are
//! strings, newtype/struct enum variants are single-key objects, `None`
//! is `null`. One deliberate extension: map keys that are not strings
//! (e.g. tuple keys) are encoded as the compact JSON text of the key —
//! the real crate rejects them — so every serializable type in the
//! workspace round-trips.

#![forbid(unsafe_code)]

use serde::de::{self, Deserialize};
use serde::ser::{self, Serialize};
use std::fmt;

mod parse;
mod print;
mod value_de;
mod value_ser;

pub use value_de::ValueDeserializer;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Alias of `Result` with [`Error`] as the error type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    value.serialize(value_ser::ValueSerializer)
}

/// Deserialize a value out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T> {
    T::deserialize(ValueDeserializer::new(value))
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::compact(&to_value(value)?))
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::pretty(&to_value(value)?))
}

/// Parse JSON text and deserialize it.
pub fn from_str<'de, T: Deserialize<'de>>(s: &'de str) -> Result<T> {
    from_value(parse::parse(s)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle(f64),
        Rect { w: f64, h: f64 },
    }

    #[test]
    fn struct_roundtrip() {
        let p = Point {
            x: 1.5,
            y: -2.25,
            label: "a \"b\"\nc".to_string(),
        };
        let json = to_string(&p).unwrap();
        let back: Point = from_str(&json).unwrap();
        assert_eq!(p, back);
        let pretty = to_string_pretty(&p).unwrap();
        let back2: Point = from_str(&pretty).unwrap();
        assert_eq!(p, back2);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapper(7)).unwrap(), "7");
        assert_eq!(from_str::<Wrapper>("7").unwrap(), Wrapper(7));
    }

    #[test]
    fn enum_conventions_match_serde() {
        assert_eq!(to_string(&Shape::Dot).unwrap(), "\"Dot\"");
        assert_eq!(to_string(&Shape::Circle(2.0)).unwrap(), "{\"Circle\":2}");
        assert_eq!(
            to_string(&Shape::Rect { w: 1.0, h: 2.0 }).unwrap(),
            "{\"Rect\":{\"w\":1,\"h\":2}}"
        );
        for v in [
            Shape::Dot,
            Shape::Circle(2.5),
            Shape::Rect { w: 1.0, h: 2.0 },
        ] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<Shape>(&json).unwrap(), v);
        }
        assert!(from_str::<Shape>("\"Nope\"").is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);

        let mut m: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        m.insert("b".into(), vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, Vec<u8>>>(&json).unwrap(), m);
    }

    #[test]
    fn non_string_map_keys_roundtrip() {
        let mut m: BTreeMap<(u32, u32), String> = BTreeMap::new();
        m.insert((1, 2), "a".into());
        m.insert((3, 4), "b".into());
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<(u32, u32), String>>(&json).unwrap(), m);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1.2304e-3, 6.02e23, -0.0, 12_345.678_901] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x, back, "{json}");
        }
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Point>("{not json").is_err());
        assert!(from_str::<Point>("").is_err());
        assert!(from_str::<Point>("{\"x\":1}").is_err());
        assert!(from_str::<u32>("-5").is_err());
        assert!(from_str::<Vec<u8>>("[1,2,").is_err());
        assert!(from_str::<Point>("{\"x\":1,\"y\":2,\"label\":\"l\"} trailing").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "tab\t nl\n quote\" back\\ unicode \u{1F600} nul\u{0}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // \uXXXX escapes (incl. surrogate pairs) parse too.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }
}
