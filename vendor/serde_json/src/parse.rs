//! A small recursive-descent JSON parser.

use crate::{Error, Result, Value};

const MAX_DEPTH: usize = 128;

pub(crate) fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the 4 digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}
