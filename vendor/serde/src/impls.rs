//! `Serialize` / `Deserialize` implementations for the standard-library
//! types the workspace serializes.

use crate::de::{Deserialize, Deserializer, Error as DeError, MapAccess, SeqAccess};
use crate::ser::{Serialize, SerializeMap, SerializeSeq, Serializer};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};

macro_rules! ser_de_int {
    ($($t:ty => $ser:ident / $de:ident / $mid:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self as $mid)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.$de()?;
                <$t>::try_from(v).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

ser_de_int!(
    i8 => serialize_i64 / deserialize_i64 / i64,
    i16 => serialize_i64 / deserialize_i64 / i64,
    i32 => serialize_i64 / deserialize_i64 / i64,
    i64 => serialize_i64 / deserialize_i64 / i64,
    isize => serialize_i64 / deserialize_i64 / i64,
    u8 => serialize_u64 / deserialize_u64 / u64,
    u16 => serialize_u64 / deserialize_u64 / u64,
    u32 => serialize_u64 / deserialize_u64 / u64,
    u64 => serialize_u64 / deserialize_u64 / u64,
    usize => serialize_u64 / deserialize_u64 / u64,
);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_f64()
    }
}
impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(deserializer.deserialize_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}
impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_char()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}
impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_option()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut access = deserializer.deserialize_seq()?;
        let mut out = Vec::with_capacity(access.size_hint().unwrap_or(0));
        while let Some(item) = access.next_element()? {
            out.push(item);
        }
        Ok(out)
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_tuple(0 $(+ { let _ = $idx; 1 })+)?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                let mut access = deserializer.deserialize_seq()?;
                let tuple = ($(
                    match access.next_element::<$name>()? {
                        Some(v) => v,
                        None => return Err(__D::Error::custom("tuple too short")),
                    },
                )+);
                Ok(tuple)
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut access = deserializer.deserialize_map()?;
        let mut out =
            HashMap::with_capacity_and_hasher(access.size_hint().unwrap_or(0), H::default());
        while let Some((k, v)) = access.next_entry()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut access = deserializer.deserialize_map()?;
        let mut out = BTreeMap::new();
        while let Some((k, v)) = access.next_entry()? {
            out.insert(k, v);
        }
        Ok(out)
    }
}
