//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace builds without network access, so the real crates.io
//! `serde` cannot be fetched. This crate provides the same *surface* —
//! `Serialize` / `Deserialize` traits, `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(from = "...", into = "...")]` container attributes),
//! `serde::Serializer` / `serde::Deserializer` bounds and
//! `serde::de::Error::custom` — over a deliberately simplified data model:
//! the only consumer is the sibling `serde_json` stand-in, so the
//! `Deserializer` trait is direct-access (no visitor indirection).
//!
//! Everything the repository's code and tests exercise (struct / newtype /
//! enum round-trips through JSON, manual trait impls) behaves identically
//! to the real crate.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! Serialization half of the data model.
    use std::fmt::Display;

    /// Error raised by a serializer.
    pub trait Error: Sized + std::error::Error {
        /// Build an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A serializable type.
    pub trait Serialize {
        /// Serialize `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A data-format serializer (implemented by `serde_json`).
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Serialization error.
        type Error: Error;
        /// Sequence sub-serializer.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        /// Map sub-serializer.
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        /// Struct sub-serializer.
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Struct-variant sub-serializer.
        type SerializeStructVariant: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

        /// Serialize a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serialize a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serialize an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serialize a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serialize a char.
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        /// Serialize a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serialize a unit value.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serialize `None`.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serialize `Some(value)`.
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
        /// Serialize a unit struct.
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        /// Serialize a unit enum variant.
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serialize a newtype struct as its inner value.
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serialize a newtype enum variant.
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Begin a sequence.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Begin a tuple (serialized as a sequence).
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeSeq, Self::Error> {
            self.serialize_seq(Some(len))
        }
        /// Begin a map.
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        /// Begin a struct.
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        /// Begin a struct enum variant.
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;
    }

    /// Incremental sequence serialization.
    pub trait SerializeSeq {
        /// Output of a successful serialization.
        type Ok;
        /// Serialization error.
        type Error: Error;
        /// Append one element.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental map serialization.
    pub trait SerializeMap {
        /// Output of a successful serialization.
        type Ok;
        /// Serialization error.
        type Error: Error;
        /// Append one key/value entry.
        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error>;
        /// Finish the map.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Incremental struct serialization (also used for struct variants).
    pub trait SerializeStruct {
        /// Output of a successful serialization.
        type Ok;
        /// Serialization error.
        type Error: Error;
        /// Append one named field.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            name: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        /// Finish the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization half of the data model.
    use std::fmt::Display;

    /// Error raised by a deserializer.
    pub trait Error: Sized + std::error::Error {
        /// Build an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A deserializable type.
    pub trait Deserialize<'de>: Sized {
        /// Deserialize a value from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A data-format deserializer (implemented by `serde_json`).
    ///
    /// Unlike the real serde this is a direct-access API (no visitors): the
    /// only data format in the workspace is self-describing JSON.
    pub trait Deserializer<'de>: Sized {
        /// Deserialization error.
        type Error: Error;
        /// Sequence accessor.
        type SeqAccess: SeqAccess<'de, Error = Self::Error>;
        /// Map accessor.
        type MapAccess: MapAccess<'de, Error = Self::Error>;
        /// Struct accessor.
        type StructAccess: StructAccess<'de, Error = Self::Error>;
        /// Enum variant accessor.
        type VariantAccess: VariantAccess<'de, Error = Self::Error>;

        /// Expect a `bool`.
        fn deserialize_bool(self) -> Result<bool, Self::Error>;
        /// Expect a signed integer.
        fn deserialize_i64(self) -> Result<i64, Self::Error>;
        /// Expect an unsigned integer.
        fn deserialize_u64(self) -> Result<u64, Self::Error>;
        /// Expect a float.
        fn deserialize_f64(self) -> Result<f64, Self::Error>;
        /// Expect a char.
        fn deserialize_char(self) -> Result<char, Self::Error>;
        /// Expect a string.
        fn deserialize_string(self) -> Result<String, Self::Error>;
        /// Expect a unit value.
        fn deserialize_unit(self) -> Result<(), Self::Error>;
        /// Expect an optional value.
        fn deserialize_option<T: Deserialize<'de>>(self) -> Result<Option<T>, Self::Error>;
        /// Expect a newtype struct (represented as its inner value).
        fn deserialize_newtype_struct<T: Deserialize<'de>>(
            self,
            name: &'static str,
        ) -> Result<T, Self::Error>;
        /// Expect a sequence.
        fn deserialize_seq(self) -> Result<Self::SeqAccess, Self::Error>;
        /// Expect a map.
        fn deserialize_map(self) -> Result<Self::MapAccess, Self::Error>;
        /// Expect a struct with the given fields.
        fn deserialize_struct(
            self,
            name: &'static str,
            fields: &'static [&'static str],
        ) -> Result<Self::StructAccess, Self::Error>;
        /// Expect an enum; returns the variant name and a payload accessor.
        fn deserialize_enum(
            self,
            name: &'static str,
            variants: &'static [&'static str],
        ) -> Result<(String, Self::VariantAccess), Self::Error>;
    }

    /// Streaming access to a sequence.
    pub trait SeqAccess<'de> {
        /// Deserialization error.
        type Error: Error;
        /// Next element, or `None` at the end.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
        /// Number of remaining elements, if known.
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    /// Streaming access to a map.
    pub trait MapAccess<'de> {
        /// Deserialization error.
        type Error: Error;
        /// Next entry, or `None` at the end.
        fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
            &mut self,
        ) -> Result<Option<(K, V)>, Self::Error>;
        /// Number of remaining entries, if known.
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    /// Named-field access to a struct (or struct variant).
    pub trait StructAccess<'de> {
        /// Deserialization error.
        type Error: Error;
        /// Extract and deserialize the named field.
        fn field<T: Deserialize<'de>>(&mut self, name: &'static str) -> Result<T, Self::Error>;
    }

    /// Access to the payload of an enum variant.
    pub trait VariantAccess<'de>: Sized {
        /// Deserialization error.
        type Error: Error;
        /// Struct accessor for struct variants.
        type StructAccess: StructAccess<'de, Error = Self::Error>;
        /// Expect a unit variant.
        fn unit(self) -> Result<(), Self::Error>;
        /// Expect a newtype variant payload.
        fn newtype<T: Deserialize<'de>>(self) -> Result<T, Self::Error>;
        /// Expect a struct variant payload with the given fields.
        fn struct_variant(
            self,
            fields: &'static [&'static str],
        ) -> Result<Self::StructAccess, Self::Error>;
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

// The trait and the derive macro share one name, exactly like the real
// crate: `serde::Serialize` resolves to the trait in type position and to
// the macro in derive position.
mod trait_reexports {
    pub use crate::de::Deserialize;
    pub use crate::ser::Serialize;
}
pub use trait_reexports::{Deserialize, Serialize};

mod impls;
