//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a short
//! calibration pass, executes a fixed wall-clock budget of iterations and
//! prints mean / best per-iteration times. That is enough for the
//! repository's benches to compile, run under `cargo bench`, and give
//! actionable relative numbers — without any registry dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default target wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);
/// Iteration count cap, protecting against ultra-cheap bodies.
const MAX_ITERS: u64 = 5_000_000;

/// The wall-clock budget per benchmark: `GMF_BENCH_BUDGET_MS` milliseconds
/// when set (CI smoke runs use a few ms), otherwise [`MEASURE_BUDGET`].
fn measure_budget() -> Duration {
    std::env::var("GMF_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .filter(|d| !d.is_zero())
        .unwrap_or(MEASURE_BUDGET)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks (one line per parameter).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark of the group with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Run one parameterless benchmark of the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a benchmark by a function name plus parameter.
    pub fn new<D: Display>(function_name: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Measures the closure handed to it by the benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Measure a closure. The return value is passed through
    /// [`black_box`] so the computation cannot be optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: estimate the per-iteration cost.
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (measure_budget().as_nanos() / once.as_nanos()).clamp(10, MAX_ITERS as u128) as u64;

        // Measurement: batches of iterations, one sample per batch.
        let batches = 10u64;
        let per_batch = (iters / batches).max(1);
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_batch as u32);
        }
        self.iters = per_batch * batches;
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = *self.samples.iter().min().unwrap();
        println!(
            "{name:<48} mean {:>12} best {:>12} ({} iters)",
            format_duration(mean),
            format_duration(best),
            self.iters
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a single runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        quick_bench(&mut c);
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}
