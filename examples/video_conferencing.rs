//! Dimensioning a video-conferencing deployment.
//!
//! The paper's introduction motivates the analysis with interactive
//! multimedia (video conferencing) at the edge of the Internet.  This
//! example provisions a small office: every employee host runs a
//! conference client that sends one audio flow (G.711) and one video flow
//! (a two-rate GMF stream) to a conference bridge host.  The operator
//! wants to know how many participants fit on a single software switch at
//! 100 Mbit/s, and how the answer changes with a gigabit uplink to the
//! bridge.
//!
//! Run with `cargo run --example video_conferencing`.

use gmf_model::conference_flows;
use gmfnet::prelude::*;

/// Try to fit `participants` conference clients on a star network whose
/// links all run at `link` speed; returns the analysis report.
fn provision(participants: usize, link: LinkProfile) -> (bool, Option<Time>) {
    let (topology, _switch, hosts) = star(participants + 1, link, SwitchConfig::paper());
    let bridge = hosts[0];
    let mut flows = FlowSet::new();

    for (i, &host) in hosts[1..].iter().enumerate() {
        let (audio, video) = conference_flows(
            &format!("client{i}"),
            20_000, // refresh frame bytes
            4_000,  // difference frame bytes
            Time::from_millis(40.0),
            Time::from_millis(80.0),
            Time::from_millis(1.0),
        );
        let route = shortest_path(&topology, host, bridge).unwrap();
        flows.add(audio, route.clone(), Priority(7));
        flows.add(video, route, Priority(5));
    }

    let report = analyze(&topology, &flows, &AnalysisConfig::paper()).unwrap();
    (report.schedulable, report.worst_bound())
}

fn main() {
    println!("participants  100 Mbit/s star          1 Gbit/s star");
    println!("------------  ----------------------  ----------------------");
    let mut capacity_fast_ethernet = 0usize;
    let mut capacity_gigabit = 0usize;
    for participants in [1usize, 2, 4, 8, 12, 16, 24, 32, 48] {
        let (ok100, bound100) = provision(participants, LinkProfile::ethernet_100m());
        let (ok1000, bound1000) = provision(participants, LinkProfile::ethernet_1g());
        if ok100 {
            capacity_fast_ethernet = participants;
        }
        if ok1000 {
            capacity_gigabit = participants;
        }
        let fmt = |ok: bool, bound: Option<Time>| {
            if ok {
                format!("fits ({} worst)", bound.unwrap())
            } else {
                "does not fit".to_string()
            }
        };
        println!(
            "{participants:>12}  {:<22}  {:<22}",
            fmt(ok100, bound100),
            fmt(ok1000, bound1000)
        );
    }
    println!();
    println!(
        "capacity with guaranteed 80 ms video / 80 ms audio deadlines: \
         {capacity_fast_ethernet} participants at 100 Mbit/s, {capacity_gigabit}+ at 1 Gbit/s"
    );
}
