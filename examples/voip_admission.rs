//! A network operator admitting Voice-over-IP calls one by one.
//!
//! This is the paper's closing use case ("this forms an admission
//! controller"): the operator owns the edge network and is asked to give
//! delay guarantees to VoIP calls.  Calls are requested one after another;
//! each is admitted only if the holistic analysis shows that *all* already
//! accepted calls and the new one still meet their deadlines.
//!
//! The example keeps admitting calls between random host pairs of the
//! paper network until the first rejection, then prints the capacity found
//! and the reason for the rejection.
//!
//! Run with `cargo run --example voip_admission`.

use gmfnet::analysis::{AdmissionDecision, AdmissionRequest};
use gmfnet::prelude::*;

fn main() {
    let (topology, net) = paper_figure1();
    let mut controller = AdmissionController::new(topology, AnalysisConfig::paper());

    // Calls alternate between host pairs so that every access link fills up
    // gradually; each call is one G.711 stream with a 10 ms one-way
    // deadline and 0.5 ms of source jitter.
    let pairs = [(0usize, 3usize), (1, 2), (2, 0), (3, 1)];
    let mut admitted = 0usize;

    for call in 0..200 {
        let (from, to) = pairs[call % pairs.len()];
        let flow = voip_flow(
            &format!("call-{call}-{from}to{to}"),
            VoiceCodec::G711,
            Time::from_millis(10.0),
            Time::from_micros(500.0),
        );
        let route = shortest_path(controller.topology(), net.hosts[from], net.hosts[to]).unwrap();
        let decision = controller
            .request_batch([AdmissionRequest::new(flow, route, Priority::HIGHEST)])
            .unwrap()
            .pop()
            .unwrap();
        match decision {
            AdmissionDecision::Accepted { report, .. } => {
                admitted += 1;
                if admitted.is_multiple_of(20) {
                    println!(
                        "{admitted:>4} calls admitted, worst bound so far {}",
                        report.worst_bound().unwrap()
                    );
                }
            }
            AdmissionDecision::Rejected { reason, report, .. } => {
                println!();
                println!("call #{call} ({from} -> {to}) REJECTED after {admitted} admitted calls");
                println!("reason: {reason}");
                println!(
                    "worst bound in the trial set: {}",
                    report.worst_bound().unwrap()
                );
                break;
            }
        }
    }

    println!();
    println!(
        "capacity of the paper network for 10 ms-deadline G.711 calls: {admitted} simultaneous calls"
    );
    let final_report = controller.reanalyze().unwrap();
    assert!(final_report.schedulable);
    println!(
        "final accepted set re-verified: schedulable = {}, {} flows",
        final_report.schedulable,
        controller.n_accepted()
    );
}
