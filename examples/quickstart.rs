//! Quickstart: analyse the paper's worked example in ~30 lines.
//!
//! Builds the Figure 1 network, binds the Figure 3 MPEG flow to the
//! Figure 2 route plus a VoIP call, runs the holistic analysis and prints
//! the per-flow response-time bounds and the admission verdict.
//!
//! Run with `cargo run --example quickstart`.

use gmfnet::prelude::*;

fn main() {
    // 1. The network of the paper's Figure 1 (hosts 0-3, switches 4-6,
    //    router 7; 10 Mbit/s access links, 100 Mbit/s backbone).
    let (topology, net) = paper_figure1();

    // 2. The traffic: the Figure 3 MPEG stream (IBBPBBPBB, one UDP packet
    //    every 30 ms) from host 0 to host 3, and a G.711 voice call from
    //    host 1 to host 3 at a higher 802.1p priority.
    let mut flows = FlowSet::new();

    let video = paper_figure3_flow(
        "mpeg-video",
        Time::from_millis(150.0), // end-to-end deadline of every packet
        Time::from_millis(1.0),   // generalized jitter at the source
    );
    let video_route = shortest_path(&topology, net.hosts[0], net.hosts[3]).unwrap();
    flows.add(video, video_route, Priority(5));

    let voice = voip_flow(
        "voip-call",
        VoiceCodec::G711,
        Time::from_millis(20.0),
        Time::ZERO,
    );
    let voice_route = shortest_path(&topology, net.hosts[1], net.hosts[3]).unwrap();
    flows.add(voice, voice_route, Priority::HIGHEST);

    // 3. The holistic schedulability analysis (the paper's contribution).
    let report = analyze(&topology, &flows, &AnalysisConfig::paper()).unwrap();

    println!("{report}");
    for flow in &report.flows {
        println!(
            "{}: worst end-to-end bound {} (slack {})",
            flow.name,
            flow.worst_bound().unwrap(),
            flow.worst_slack().unwrap()
        );
    }
    assert!(report.schedulable, "the paper example is schedulable");
    println!("verdict: ACCEPT - every frame of every flow meets its deadline");
}
