//! Comparing the analytical bound with simulated behaviour.
//!
//! Runs the paper scenario (on 100 Mbit/s access links) both through the
//! holistic analysis and through the discrete-event switch simulator, and
//! prints, for every frame of the MPEG flow, the worst simulated response
//! time next to the analytical bound — the picture a practitioner needs in
//! order to trust (and to gauge the pessimism of) the admission
//! controller.
//!
//! Run with `cargo run --release --example analysis_vs_simulation`.

use gmf_model::FlowId;
use gmfnet::prelude::*;

fn main() {
    let netcfg = PaperNetworkConfig {
        access: LinkProfile::ethernet_100m(),
        ..Default::default()
    };
    let (scenario, ids) = gmf_workloads::paper_scenario_with(netcfg);

    // Analytical bounds (conservative configuration: both documented
    // refinements enabled, see DESIGN.md §4).
    let report = analyze(
        &scenario.topology,
        &scenario.flows,
        &AnalysisConfig::conservative(),
    )
    .unwrap();
    assert!(report.schedulable);

    // Simulated worst case over a 2 s horizon with dense (worst-case legal)
    // arrivals.
    let sim_config = SimConfig {
        horizon: Time::from_secs(2.0),
        ..SimConfig::default()
    };
    let result = Simulator::new(&scenario.topology, &scenario.flows, sim_config)
        .unwrap()
        .run()
        .unwrap();

    let video = FlowId(ids.video);
    let video_report = report.flow(video).unwrap();
    println!("MPEG video flow, frame by frame (simulated worst vs analytical bound):");
    println!("frame  simulated worst   analytical bound   obs/bound");
    for (k, frame) in video_report.frames.iter().enumerate() {
        let observed = result
            .stats
            .worst_frame_response(video, k)
            .unwrap_or(Time::ZERO);
        println!(
            "{k:>5}  {observed:<16}  {:<17}  {:.2}",
            frame.bound,
            observed / frame.bound
        );
        assert!(
            observed <= frame.bound,
            "the bound must dominate the simulation"
        );
    }

    println!();
    println!("all flows:");
    for binding in scenario.flows.bindings() {
        let bound = report.flow(binding.id).unwrap().worst_bound().unwrap();
        let observed = result.stats.worst_response(binding.id).unwrap();
        println!(
            "  {:<14} simulated worst {:<14} bound {:<14} packets observed {}",
            binding.flow.name(),
            observed,
            bound,
            result.stats.completed_of_flow(binding.id)
        );
    }
    println!();
    println!(
        "simulator processed {} events over {} of simulated time",
        result.events_processed, result.final_time
    );
}
