//! Property tests pinning the byte-identity of the precompiled
//! [`DemandTable`] against the closed-form request bounds of
//! [`LinkDemand`] — the correctness contract of the per-frame analysis
//! kernels.
//!
//! Every assertion is exact equality on the raw values: the table is
//! required to be *bit-identical* to the `O(n³)` double loops it
//! replaces, not merely within tolerance, because the busy-period fixed
//! points compare iterates with an epsilon and any drift would change
//! convergence behaviour.  The sweep covers random GMF flows, the VoIP
//! and MPEG generator families, random horizons across several cycles,
//! and the near-`Time::MAX` saturation sentinels.

use gmfnet::model::{DemandTable, LinkDemand};
use gmfnet::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary (but valid) GMF flow with 1..=8 frames.
fn arb_flow() -> impl Strategy<Value = GmfFlow> {
    prop::collection::vec(
        (
            100u64..60_000, // payload bytes
            5.0f64..100.0,  // min inter-arrival (ms)
            10.0f64..500.0, // deadline (ms)
            0.0f64..5.0,    // jitter (ms)
        ),
        1..=8,
    )
    .prop_map(|frames| {
        let specs = frames
            .into_iter()
            .map(|(payload, t, d, j)| FrameSpec {
                payload: Bits::from_bytes(payload),
                min_interarrival: Time::from_millis(t),
                deadline: Time::from_millis(d),
                jitter: Time::from_millis(j),
            })
            .collect();
        GmfFlow::new("prop-flow", specs).expect("generated frames are valid")
    })
}

/// Strategy: one of the real traffic families the experiments use — a
/// VoIP codec stream or the paper's Figure 3 MPEG GOP.
fn arb_family_flow() -> impl Strategy<Value = GmfFlow> {
    (0usize..5, 50.0f64..400.0, 0.0f64..4.0).prop_map(|(pick, deadline, jitter)| {
        let codec = match pick {
            0 => VoiceCodec::G711,
            1 => VoiceCodec::G726,
            2 => VoiceCodec::G729,
            3 => VoiceCodec::G7231,
            _ => {
                return paper_figure3_flow(
                    "prop-mpeg",
                    Time::from_millis(deadline),
                    Time::from_millis(jitter),
                )
            }
        };
        voip_flow(
            "prop-voip",
            codec,
            Time::from_millis(20.0),
            Time::from_millis(jitter.min(1.0)),
        )
    })
}

/// The table and the closed forms must agree bit-for-bit — aggregates and
/// all four request bounds — at every probe.
fn assert_table_matches(demand: &LinkDemand, probes: impl IntoIterator<Item = Time>) {
    let table = DemandTable::new(demand);
    assert_eq!(table.csum(), demand.csum());
    assert_eq!(table.nsum(), demand.nsum());
    assert_eq!(table.tsum(), demand.tsum());
    for t in probes {
        assert_eq!(table.mxs(t), demand.mxs(t), "mxs at {t:?}");
        assert_eq!(table.nxs(t), demand.nxs(t), "nxs at {t:?}");
        assert_eq!(table.mx(t), demand.mx(t), "mx at {t:?}");
        assert_eq!(table.nx(t), demand.nx(t), "nx at {t:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Table lookups equal the closed forms bit-for-bit over random GMF
    /// flows × random horizons, with probes placed both at arbitrary
    /// points and exactly on every window-span boundary (the binary
    /// search's edge cases).
    #[test]
    fn table_matches_closed_forms_on_random_flows(
        flow in arb_flow(),
        windows in prop::collection::vec(0.0f64..2_000.0, 1..24),
        rate_pick in 0usize..3,
    ) {
        let rate_mbps = [10.0, 100.0, 1000.0][rate_pick];
        let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), BitRate::from_mbps(rate_mbps));
        let mut probes: Vec<Time> = windows.into_iter().map(Time::from_millis).collect();
        probes.push(Time::ZERO);
        probes.push(Time::from_millis(-1.0));
        for k1 in 0..demand.n_frames() {
            for k2 in 1..=demand.n_frames() {
                let span = demand.tsum_window(k1, k2);
                probes.push(span);
                probes.push(span + Time::from_nanos(1.0));
                probes.push(span - Time::from_nanos(1.0));
            }
        }
        assert_table_matches(&demand, probes);
    }

    /// The same identity over the VoIP / MPEG generator families the
    /// experiments are built from.
    #[test]
    fn table_matches_closed_forms_on_traffic_families(
        flow in arb_family_flow(),
        windows in prop::collection::vec(0.0f64..5_000.0, 1..16),
    ) {
        let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), BitRate::from_mbps(10.0));
        assert_table_matches(&demand, windows.into_iter().map(Time::from_millis));
    }

    /// Near-`Time::MAX` saturation: the `u64::MAX`-cycle sentinel and the
    /// saturating splice must agree with the closed forms all the way to
    /// the top of the representable range (PR 6's overflow hardening).
    #[test]
    fn table_matches_closed_forms_at_saturation(
        flow in arb_flow(),
        scale in 1e3f64..1e15,
    ) {
        let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), BitRate::from_mbps(10.0));
        let probes = [
            Time::MAX,
            Time::MAX * 0.5,
            Time::from_secs(scale),
            Time::from_secs(scale) * 1_000_000_000u64,
        ];
        assert_table_matches(&demand, probes);
        let table = DemandTable::new(&demand);
        assert_eq!(table.mx(Time::MAX), Time::MAX);
        assert_eq!(table.nx(Time::MAX), u64::MAX);
    }
}
