//! Property tests of the failure-and-recovery subsystem: for every
//! single-failure scenario of a ring-of-cells workload — each cable cut,
//! each switch CPU degradation — the *incremental* survivability verdict
//! (release the affected shards from a warm admission controller, rebase
//! onto the survivor topology, re-admit the re-routed flows shard-scoped)
//! must be **byte-identical** to a cold from-scratch analysis of the
//! re-routed survivor set: same schedulability verdict, same stranded set,
//! same margin, same per-flow per-frame bounds.  Checked across worker
//! threads (1 and 4) and both fixed-point strategies.

use gmfnet::analysis::{
    divergence, single_failure_scenarios, AnalysisConfig, DependencyGraph, FixedPointStrategy,
    SurvivabilityAnalysis,
};
use gmfnet::workloads::{resilience_scenario, ResilienceConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Incremental == cold on every single failure of a random ring
    /// workload, across threads and fixed-point strategies.
    #[test]
    fn incremental_survivor_verdicts_are_byte_identical_to_cold(
        seed in 0u64..1_000_000,
    ) {
        let config = ResilienceConfig::tiny();
        let scenario = resilience_scenario(seed, &config);
        let failures = single_failure_scenarios(&scenario.topology, &[2, 8]);
        for strategy in [FixedPointStrategy::Picard, FixedPointStrategy::Anderson1] {
            for threads in [1usize, 4] {
                let analysis_config = AnalysisConfig::paper()
                    .with_strategy(strategy)
                    .with_threads(threads);
                let (analysis, _) = SurvivabilityAnalysis::new(
                    scenario.topology.clone(),
                    scenario.flows.clone(),
                    analysis_config,
                )
                .unwrap();
                for failure in &failures {
                    let verdict = analysis.assess(failure).unwrap();
                    let cold = analysis.cold_verdict(failure).unwrap();
                    prop_assert_eq!(
                        divergence(&verdict, &cold),
                        None,
                        "{} under {:?} x{} threads",
                        failure.label(),
                        strategy,
                        threads
                    );
                    // Structural invariants of the verdict itself.
                    if verdict.survivable {
                        prop_assert!(verdict.stranded.is_empty());
                        prop_assert!(verdict.survivor_schedulable);
                    }
                    if verdict.survivor_schedulable {
                        prop_assert!(verdict.margin.is_some());
                        // Bounds cover exactly the survivor set, keyed by
                        // original flow id.
                        prop_assert_eq!(
                            verdict.bounds.len(),
                            scenario.flows.len() - verdict.stranded.len()
                        );
                    }
                    // Every trunk cut of the ring re-routes; it never
                    // strands (the redundancy the topology is built for).
                    if let gmfnet::analysis::FailureScenario::CableCut { a, b } = *failure {
                        let is_trunk = scenario
                            .trunks
                            .iter()
                            .any(|&(x, y)| (x.min(y), x.max(y)) == (a, b));
                        if is_trunk {
                            prop_assert!(verdict.stranded.is_empty());
                            prop_assert!(!verdict.rerouted.is_empty());
                        }
                    }
                }
            }
        }
    }
}

/// Assessing a scenario is pure: it never mutates the pristine baseline,
/// and repeating the same assessment yields the identical verdict.
#[test]
fn assessment_is_pure_and_repeatable() {
    let config = ResilienceConfig::tiny();
    let scenario = resilience_scenario(1608, &config);
    let (analysis, _) = SurvivabilityAnalysis::new(
        scenario.topology.clone(),
        scenario.flows.clone(),
        AnalysisConfig::paper(),
    )
    .unwrap();
    let failures = single_failure_scenarios(&scenario.topology, &[2, 8]);
    let first = analysis.sweep(&failures).unwrap();
    let second = analysis.sweep(&failures).unwrap();
    assert_eq!(first, second);
    // The baseline controller still mirrors a from-scratch partition of
    // the original accepted set.
    assert_eq!(
        analysis.controller().partition(),
        &DependencyGraph::new(analysis.controller().accepted())
    );
    assert_eq!(analysis.controller().n_accepted(), scenario.flows.len());
}
