//! The seeded conformance fuzz campaign (the test-suite face of E13).
//!
//! Hundreds of random *valid* scenarios — random tree/star/line
//! topologies, mixed link profiles, VoIP/MPEG/synthetic-GMF flow mixes —
//! are simulated under the adversarial arrival policies and checked
//! against the conservative analytical bounds: every completed
//! (policy, flow, frame) must observe `response ≤ bound`, and a flow that
//! completes *zero* packets under a policy fails the case instead of
//! passing it vacuously.
//!
//! The committed regression corpus (`tests/corpus/conformance/`) is
//! replayed before any random case (both by a dedicated test and, via a
//! `Once`, at the start of the campaign property).  On a violation the
//! campaign prints the fuzz seed and a greedily minimized reproducer as
//! scenario-file JSON — ready to be committed as the next corpus case
//! (see the corpus README).
//!
//! A second property pins `reference::analyze_reference == analyze` on
//! the fuzz distribution (tree/multi-switch topologies the sweep- and
//! churn-style property sets never draw), across worker threads 1/4 and
//! round skipping on/off.

use gmf_bench::conformance::{check_scenario, minimize_violation, ConformanceConfig};
use gmfnet::analysis::{analyze, analyze_reference, AnalysisConfig};
use gmfnet::workloads::{draw_scenario, valid_scenario, FuzzConfig, ScenarioFile};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Once;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/conformance")
}

/// The campaign's generator configuration: the E13 defaults, slightly
/// narrowed so a debug-profile CI run stays cheap per case.
fn fuzz_config() -> FuzzConfig {
    FuzzConfig {
        n_flows: (3, 7),
        utilization: (0.1, 0.6),
        ..FuzzConfig::default()
    }
}

/// Replay every committed corpus case through the full conformance check
/// (engine axes included) and return how many were replayed.
fn replay_corpus() -> usize {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|entry| entry.expect("corpus directory is readable").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "the corpus must contain at least one case"
    );
    for path in &paths {
        let case = ScenarioFile::load(path)
            .unwrap_or_else(|e| panic!("corpus case {} does not load: {e}", path.display()));
        case.validate()
            .unwrap_or_else(|e| panic!("corpus case {}: {e}", case.name));
        let conformance = check_scenario(
            &case.name,
            &case.topology,
            &case.flows,
            &ConformanceConfig::default(),
        )
        .unwrap_or_else(|e| panic!("corpus case {}: {e}", case.name));
        assert!(
            conformance.violations.is_empty(),
            "corpus case {} regressed: {:?}",
            case.name,
            conformance.violations
        );
        assert!(
            conformance.vacuous.is_empty(),
            "corpus case {} has vacuous flows: {:?}",
            case.name,
            conformance.vacuous
        );
    }
    paths.len()
}

static CORPUS_FIRST: Once = Once::new();

/// The corpus replays before any random case of the campaign property
/// (and `corpus_replays_cleanly` keeps it covered even when the property
/// is filtered out).
fn replay_corpus_once() {
    CORPUS_FIRST.call_once(|| {
        replay_corpus();
    });
}

#[test]
fn corpus_replays_cleanly() {
    assert!(replay_corpus() >= 2);
}

/// Regression: this fuzz seed once drew a scaled MPEG GOP whose 35.6 ms
/// end-to-end bound crossed its 30 ms inter-arrival slot on a two-switch
/// tree — successive packets coexisted in the network, the uncharged
/// own-flow backlog pushed the simulator past the bound (ratio 1.42), and
/// the campaign failed.  The generator's pipelined-frames gate now
/// rejects that draw; the seed must resolve to a clean scenario with the
/// rejection on record.
#[test]
fn seed_4266082829564632274_is_gated_not_violating() {
    let seed = 4266082829564632274u64;
    let config = fuzz_config();
    let (scenario, rejections) = valid_scenario(seed, &config);
    assert!(
        rejections
            .iter()
            .any(|(_, reason)| reason.kind() == "pipelined-frames"),
        "the offending draw must be rejected by the pipelined-frames gate; got {rejections:?}"
    );
    let conformance = check_scenario(
        &scenario.label,
        &scenario.topology,
        &scenario.flows,
        &ConformanceConfig {
            engine_axes: false,
            ..ConformanceConfig::default()
        },
    )
    .unwrap();
    assert!(conformance.is_clean(), "{:?}", conformance.violations);
}

/// Regression: this draw once produced a VoIP flow whose egress bound
/// omitted the frame's *own* send-task stride-round wait — with the switch
/// CPU busy routing 137-fragment packets, the simulator beat the bound by
/// 9 µs under the max-release-jitter policy.  The conservative analysis
/// now charges one `CIRC(N)` (and one `MFT` blocking) per own Ethernet
/// frame at the egress; the draw must be clean or rejected outright.
#[test]
fn seed_0x15419ca64d319df4_send_task_wait_is_charged() {
    match draw_scenario(0x15419ca64d319df4, &FuzzConfig::default()) {
        Ok(scenario) => {
            let conformance = check_scenario(
                &scenario.label,
                &scenario.topology,
                &scenario.flows,
                &ConformanceConfig {
                    engine_axes: false,
                    ..ConformanceConfig::default()
                },
            )
            .unwrap();
            assert!(
                conformance.violations.is_empty(),
                "{:?}",
                conformance.violations
            );
        }
        // The refined (larger) bounds may push the draw out of the sound
        // regime instead — also a correct outcome.
        Err(reason) => assert!(!reason.to_string().is_empty()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The campaign: a random valid scenario per case, simulated under
    /// the dense control and all three adversarial policies; zero bound
    /// violations and zero vacuous flows required.
    #[test]
    fn fuzzed_scenarios_never_beat_their_bounds(seed in 0u64..u64::MAX / 2) {
        replay_corpus_once();
        let config = fuzz_config();
        let (scenario, _rejections) = valid_scenario(seed, &config);
        // The engine axes are pinned by their own property below; the
        // campaign spends its budget on simulation coverage.
        let check = ConformanceConfig {
            engine_axes: false,
            ..ConformanceConfig::default()
        };
        let conformance = check_scenario(
            &scenario.label,
            &scenario.topology,
            &scenario.flows,
            &check,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", scenario.label));
        prop_assert!(
            conformance.vacuous.is_empty(),
            "{} (fuzz seed {seed}): vacuous coverage {:?}",
            scenario.label,
            conformance.vacuous
        );
        if !conformance.violations.is_empty() {
            // Fail loudly with everything needed to pin the regression:
            // the seed, the violations, and a minimized reproducer in the
            // corpus JSON format.
            let minimal = minimize_violation(&scenario.topology, &scenario.flows, &check)
                .unwrap_or_else(|| scenario.flows.clone());
            let reproducer = ScenarioFile::new(
                scenario.label.clone(),
                format!("minimized conformance violation, fuzz seed {seed}"),
                scenario.topology.clone(),
                minimal,
            );
            eprintln!(
                "minimized reproducer (save under tests/corpus/conformance/):\n{}",
                reproducer.to_json().expect("scenario serializes")
            );
            prop_assert!(
                false,
                "{} (fuzz seed {seed}): bound violations {:?}",
                scenario.label,
                conformance.violations
            );
        }
    }

    /// The keyed reference engine and the dense production engine agree
    /// byte-for-byte on the fuzz distribution, across worker threads and
    /// dirty-flow round skipping.
    #[test]
    fn reference_engine_matches_dense_on_fuzz_scenarios(seed in 0u64..u64::MAX / 2) {
        let config = fuzz_config();
        let (scenario, _) = valid_scenario(seed, &config);
        let reference = analyze_reference(
            &scenario.topology,
            &scenario.flows,
            &AnalysisConfig::conservative(),
        )
        .unwrap();
        for threads in [1usize, 4] {
            for skip in [false, true] {
                let dense = analyze(
                    &scenario.topology,
                    &scenario.flows,
                    &AnalysisConfig::conservative()
                        .with_threads(threads)
                        .with_skip_unchanged_flows(skip),
                )
                .unwrap();
                prop_assert_eq!(
                    &reference, &dense,
                    "{}: threads = {}, skip = {}",
                    scenario.label, threads, skip
                );
            }
        }
    }
}
