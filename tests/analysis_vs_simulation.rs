//! Integration tests validating the analytical bounds against the
//! discrete-event simulator (experiment E7 as an enforced test).
//!
//! The validation scenarios keep every frame's transmission within its
//! minimum inter-arrival time on every traversed link — the regime the
//! published per-frame equations are intended for (see DESIGN.md §4).

use gmf_bench::conformance::check_simulation;
use gmfnet::model::FlowId;
use gmfnet::prelude::*;
use gmfnet::sim::{ArrivalPolicy, JitterSpread};

/// Check that the conservative analytical bound dominates every simulated
/// response time, for every flow and frame, under the given simulation
/// configuration.
///
/// Implemented on the conformance driver (`gmf_bench::conformance`), which
/// also fails the check when a flow completed *zero* packets: such a flow
/// used to slip through this assertion vacuously — every per-frame lookup
/// returned `None` — and silently proved nothing.
fn assert_bounds_dominate(
    topology: &Topology,
    flows: &FlowSet,
    sim_config: SimConfig,
    label: &str,
) {
    let conformance = check_simulation(
        label,
        topology,
        flows,
        &AnalysisConfig::conservative(),
        sim_config,
    )
    .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(
        !conformance.observations.is_empty(),
        "{label}: the simulation must observe traffic"
    );
    assert!(
        conformance.vacuous.is_empty(),
        "{label}: flows with zero completed packets (vacuous coverage): {:?}",
        conformance.vacuous
    );
    assert!(
        conformance.violations.is_empty(),
        "{label}: simulated responses exceed their bounds: {:?}",
        conformance.violations
    );
}

#[test]
fn paper_scenario_on_fast_access_links() {
    let netcfg = PaperNetworkConfig {
        access: LinkProfile::ethernet_100m(),
        ..Default::default()
    };
    let (scenario, _) = gmf_workloads::paper_scenario_with(netcfg);
    assert_bounds_dominate(
        &scenario.topology,
        &scenario.flows,
        SimConfig {
            horizon: Time::from_millis(800.0),
            ..SimConfig::default()
        },
        "paper scenario, dense arrivals",
    );
}

#[test]
fn paper_scenario_with_randomised_arrivals() {
    let netcfg = PaperNetworkConfig {
        access: LinkProfile::ethernet_100m(),
        ..Default::default()
    };
    let (scenario, _) = gmf_workloads::paper_scenario_with(netcfg);
    for seed in [3u64, 17, 91] {
        assert_bounds_dominate(
            &scenario.topology,
            &scenario.flows,
            SimConfig {
                horizon: Time::from_millis(600.0),
                arrival: ArrivalPolicy::RandomSlack { slack: 0.4 },
                jitter_spread: JitterSpread::AtEnd,
                aligned_start: false,
                seed,
                ..SimConfig::default()
            },
            &format!("paper scenario, randomised arrivals, seed {seed}"),
        );
    }
}

#[test]
fn conference_star_scenario() {
    // Eight conference clients feeding a bridge through one software
    // switch at 100 Mbit/s — the motivating deployment of the example
    // applications.
    let (topology, _switch, hosts) = star(9, LinkProfile::ethernet_100m(), SwitchConfig::paper());
    let bridge = hosts[0];
    let mut flows = FlowSet::new();
    for (i, &host) in hosts[1..].iter().enumerate() {
        let (audio, video) = gmfnet::model::conference_flows(
            &format!("client{i}"),
            20_000,
            4_000,
            Time::from_millis(40.0),
            Time::from_millis(120.0),
            Time::from_millis(1.0),
        );
        let route = shortest_path(&topology, host, bridge).unwrap();
        flows.add(audio, route.clone(), Priority(7));
        flows.add(video, route, Priority(5));
    }
    assert_bounds_dominate(
        &topology,
        &flows,
        SimConfig {
            horizon: Time::from_millis(500.0),
            ..SimConfig::default()
        },
        "conference star",
    );
}

/// The simulator itself behaves like a static-priority network: when two
/// flows congest one output link, the higher-priority one observes smaller
/// worst-case responses, and the analysis ranks them the same way.
#[test]
fn simulation_and_analysis_agree_on_priority_ordering() {
    let (topology, _switch, hosts) = star(4, LinkProfile::ethernet_10m(), SwitchConfig::paper());
    let mut flows = FlowSet::new();
    let mk = |name: &str| {
        cbr_flow(
            name,
            15_000,
            Time::from_millis(25.0),
            Time::from_millis(200.0),
            Time::from_millis(1.0),
        )
    };
    flows.add(
        mk("hi"),
        shortest_path(&topology, hosts[0], hosts[3]).unwrap(),
        Priority(7),
    );
    flows.add(
        mk("lo"),
        shortest_path(&topology, hosts[1], hosts[3]).unwrap(),
        Priority(1),
    );

    let report = analyze(&topology, &flows, &AnalysisConfig::paper()).unwrap();
    let hi_bound = report.flow(FlowId(0)).unwrap().worst_bound().unwrap();
    let lo_bound = report.flow(FlowId(1)).unwrap().worst_bound().unwrap();
    assert!(hi_bound < lo_bound);

    let result = Simulator::new(
        &topology,
        &flows,
        SimConfig {
            horizon: Time::from_millis(500.0),
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap();
    let hi_obs = result.stats.worst_response(FlowId(0)).unwrap();
    let lo_obs = result.stats.worst_response(FlowId(1)).unwrap();
    assert!(hi_obs < lo_obs);
}
