//! Property tests of the sharded admission plane: batched, shard-parallel
//! warm admission must be *decision-for-decision byte-identical* to a
//! sequential cold controller that re-analyses the whole accepted set per
//! request — across worker threads, fixed-point strategies and
//! arrival/departure (churn) orders — and the partition layer must track
//! shard merges and splits exactly.
//!
//! The comparisons pin the tentpole claims of the sharded plane:
//!
//! (a) accept/reject verdicts, rejection reasons and victim attributions
//!     are identical; warm (shard-scoped) trial reports are bytewise
//!     projections of the cold (global) reports; the final accepted sets
//!     are equal; and for the Picard strategy the final bounds also equal
//!     the deliberately simple [`gmfnet::analysis::analyze_reference`]
//!     oracle, which shares no hot-path code with the production engine;
//! (b) an accepted bridge merges every shard its route touches
//!     (merge-on-bridge), a rejection leaves the partition untouched, and
//!     a departure splits the shard back — always agreeing with a
//!     from-scratch [`DependencyGraph`] rebuild.

use gmfnet::analysis::{
    analyze_reference, AdmissionController, AdmissionDecision, AdmissionMode, AdmissionRequest,
    AnalysisConfig, DependencyGraph, FixedPointStrategy,
};
use gmfnet::net::{FlowSet, Topology};
use gmfnet::workloads::{random_sweep_set, SweepConfig};
use proptest::prelude::*;

fn sweep_set(seed: u64, n_flows: usize, utilization: f64) -> (Topology, FlowSet) {
    random_sweep_set(seed, n_flows, utilization, &SweepConfig::default())
}

/// Assert one batched-warm decision equals its sequential-cold
/// counterpart: same verdict, same id, same reason and victim, and the
/// warm (shard-scoped) report is a bytewise projection of the cold
/// (global) one.
fn assert_decisions_match(warm: &AdmissionDecision, cold: &AdmissionDecision, context: &str) {
    assert_eq!(warm.is_accepted(), cold.is_accepted(), "{context}");
    assert_eq!(warm.id(), cold.id(), "{context}");
    match (warm, cold) {
        (
            AdmissionDecision::Rejected {
                reason: warm_reason,
                victim: warm_victim,
                ..
            },
            AdmissionDecision::Rejected {
                reason: cold_reason,
                victim: cold_victim,
                ..
            },
        ) => {
            assert_eq!(warm_reason, cold_reason, "{context}");
            assert_eq!(warm_victim, cold_victim, "{context}");
        }
        (AdmissionDecision::Accepted { .. }, AdmissionDecision::Accepted { .. }) => {}
        _ => unreachable!("verdicts already compared"),
    }
    for flow_report in &warm.report().flows {
        assert_eq!(
            Some(flow_report),
            cold.report().flow(flow_report.flow),
            "{context}: warm shard report must project out of the cold global report"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (a) Batched shard-parallel warm admission == sequential global cold
    /// admission, across threads and strategies, through a churn step.
    #[test]
    fn batched_warm_admission_matches_sequential_cold(
        seed in 0u64..1_000_000,
        n_flows in 3usize..10,
        utilization in 0.1f64..1.0,
        batch in 1usize..4,
        drop_index in 0usize..4,
    ) {
        let (topology, set) = sweep_set(seed, n_flows, utilization);
        for strategy in [FixedPointStrategy::Picard, FixedPointStrategy::Anderson1] {
            for threads in [1usize, 4] {
                let config = AnalysisConfig::paper()
                    .with_strategy(strategy)
                    .with_threads(threads);
                let mut warm = AdmissionController::new(topology.clone(), config)
                    .with_mode(AdmissionMode::Warm);
                let mut cold = AdmissionController::new(
                    topology.clone(),
                    AnalysisConfig::paper().with_strategy(strategy),
                )
                .with_mode(AdmissionMode::Cold);

                let bindings = set.bindings();
                let (first, second) = bindings.split_at(bindings.len() / 2);
                for (half, chunk_set) in [first, second].iter().enumerate() {
                    for chunk in chunk_set.chunks(batch) {
                        let requests: Vec<AdmissionRequest> = chunk
                            .iter()
                            .map(|b| {
                                AdmissionRequest::new(
                                    b.flow.clone(),
                                    b.route.clone(),
                                    b.priority,
                                )
                            })
                            .collect();
                        let warm_decisions = warm.request_batch(requests.clone()).unwrap();
                        // The cold oracle takes the same requests one at a
                        // time — the semantics request_batch must preserve.
                        for (request, warm_decision) in
                            requests.into_iter().zip(&warm_decisions)
                        {
                            let cold_decision =
                                cold.request_batch([request]).unwrap().pop().unwrap();
                            assert_decisions_match(
                                warm_decision,
                                &cold_decision,
                                &format!("strategy {strategy:?}, threads {threads}"),
                            );
                        }
                    }
                    // Churn between the halves: the same departure on both
                    // controllers must keep them in lockstep.
                    if half == 0 {
                        let ids: Vec<_> = warm.accepted().ids().collect();
                        if !ids.is_empty() {
                            let departing = ids[drop_index % ids.len()];
                            warm.release(departing).unwrap();
                            cold.release(departing).unwrap();
                        }
                    }
                }

                prop_assert_eq!(warm.accepted(), cold.accepted());
                prop_assert_eq!(warm.partition(), &DependencyGraph::new(warm.accepted()));

                // Independent final oracle: the reference engine (keyed,
                // sequential Picard) agrees on the surviving set's bounds.
                if strategy == FixedPointStrategy::Picard && !warm.accepted().is_empty() {
                    let reference = analyze_reference(
                        &topology,
                        warm.accepted(),
                        &AnalysisConfig::paper(),
                    )
                    .unwrap();
                    let reanalyzed = warm.reanalyze().unwrap();
                    prop_assert_eq!(&reference.flows, &reanalyzed.flows);
                    prop_assert_eq!(reference.schedulable, reanalyzed.schedulable);
                }
            }
        }
    }
}

/// (b) Shard merge on an accepted bridge, no-op on a rejection, split on
/// the bridge's departure — the partition always equals a from-scratch
/// rebuild of the accepted set.
#[test]
fn bridge_admission_merges_shards_and_departure_splits_them() {
    use gmfnet::analysis::ShardId;
    use gmfnet::model::{cbr_flow, Time};
    use gmfnet::net::{shortest_path, star, LinkProfile, Priority, SwitchConfig};

    let probe = |name: &str, deadline_ms: f64| {
        cbr_flow(
            name,
            200,
            Time::from_millis(10.0),
            Time::from_millis(deadline_ms),
            Time::ZERO,
        )
    };
    let (topology, _, hosts) = star(6, LinkProfile::ethernet_100m(), SwitchConfig::paper());
    let mut ctl = AdmissionController::new(topology.clone(), AnalysisConfig::paper())
        .with_mode(AdmissionMode::Warm);

    // Two link-disjoint flows: two singleton shards.
    let r01 = shortest_path(&topology, hosts[0], hosts[1]).unwrap();
    let r23 = shortest_path(&topology, hosts[2], hosts[3]).unwrap();
    let decisions = ctl
        .request_batch([
            AdmissionRequest::new(probe("a", 10.0), r01, Priority(3)),
            AdmissionRequest::new(probe("b", 10.0), r23, Priority(3)),
        ])
        .unwrap();
    assert!(decisions.iter().all(|d| d.is_accepted()));
    let (a, b) = (decisions[0].id(), decisions[1].id());
    assert_eq!(ctl.partition().n_shards(), 2);
    assert_ne!(ctl.partition().shard_of(a), ctl.partition().shard_of(b));

    // An impossible bridge (sub-transmission-time deadline) is rejected
    // and leaves the partition untouched.
    let bridge_route = shortest_path(&topology, hosts[0], hosts[3]).unwrap();
    let rejected = ctl
        .request_batch([AdmissionRequest::new(
            probe("tight-bridge", 0.001),
            bridge_route.clone(),
            Priority(3),
        )])
        .unwrap()
        .pop()
        .unwrap();
    assert!(!rejected.is_accepted());
    assert_eq!(ctl.partition().n_shards(), 2);
    assert_eq!(
        ctl.partition().shards_touching_route(&bridge_route).len(),
        2
    );

    // A feasible bridge merges both shards into one, named after the
    // smallest member (merge-on-bridge).
    let accepted = ctl
        .request_batch([AdmissionRequest::new(
            probe("bridge", 10.0),
            bridge_route,
            Priority(3),
        )])
        .unwrap()
        .pop()
        .unwrap();
    assert!(accepted.is_accepted());
    let bridge = accepted.id();
    assert_eq!(ctl.partition().n_shards(), 1);
    assert_eq!(ctl.partition().shard_of(b), Some(ShardId(a)));
    assert_eq!(
        ctl.partition().shard_flows(ShardId(a)).unwrap(),
        &[a, b, bridge]
    );

    // Departure of the bridge splits the shard back into the originals.
    ctl.release(bridge).unwrap();
    assert_eq!(ctl.partition().n_shards(), 2);
    assert_eq!(ctl.partition().shard_of(a), Some(ShardId(a)));
    assert_eq!(ctl.partition().shard_of(b), Some(ShardId(b)));
    assert_eq!(ctl.partition(), &DependencyGraph::new(ctl.accepted()));

    // The post-split controller still decides identically to a cold one.
    let r45 = shortest_path(&topology, hosts[4], hosts[5]).unwrap();
    let mut cold = AdmissionController::with_accepted(
        topology,
        ctl.accepted().clone(),
        AnalysisConfig::paper(),
    )
    .unwrap()
    .0
    .with_mode(AdmissionMode::Cold);
    let request = AdmissionRequest::new(probe("c", 10.0), r45, Priority(3));
    let w = ctl.request_batch([request.clone()]).unwrap().pop().unwrap();
    let c = cold.request_batch([request]).unwrap().pop().unwrap();
    assert_eq!(w.is_accepted(), c.is_accepted());
    assert_eq!(w.id(), c.id());
    assert_eq!(ctl.accepted(), cold.accepted());
}

/// Topology-mutation edge case: cut a trunk of a ring workload, drive the
/// admission plane through the primitives the survivability module
/// composes — whole-shard `release_batch`, `rebase` onto the survivor
/// topology, shard-scoped re-admission over fallback routes — and the
/// partition must still equal a from-scratch [`DependencyGraph`] rebuild,
/// with every flow re-admitted (the ring strands nothing).
#[test]
fn release_rebase_readmit_after_cable_cut_keeps_partition_exact() {
    use gmfnet::model::FlowId;
    use gmfnet::net::reroute_severed;
    use gmfnet::workloads::{resilience_scenario, ResilienceConfig};
    use std::collections::BTreeSet;

    let config = ResilienceConfig::tiny();
    let scenario = resilience_scenario(42, &config);
    let (mut ctl, _) = AdmissionController::with_accepted(
        scenario.topology.clone(),
        scenario.flows.clone(),
        AnalysisConfig::paper(),
    )
    .unwrap();
    let n_before = ctl.n_accepted();

    let (a, b) = scenario.trunks[0];
    let mut faulty = scenario.topology.clone();
    faulty.fail_link(a, b).unwrap();
    let survivor = faulty.survivor();

    // Release the whole shard of every flow touching a dirty node, so the
    // retained cache stays exactly valid across the rebase.
    let mut release: BTreeSet<FlowId> = BTreeSet::new();
    for id in survivor.affected_flows(ctl.accepted()) {
        match ctl
            .partition()
            .shard_of(id)
            .and_then(|shard| ctl.partition().shard_flows(shard))
        {
            Some(members) => release.extend(members.iter().copied()),
            None => {
                release.insert(id);
            }
        }
    }
    let order: Vec<FlowId> = release.iter().copied().collect();
    assert!(!order.is_empty(), "a trunk cut must affect transit flows");

    let outcomes = reroute_severed(&survivor, ctl.accepted());
    assert!(outcomes.iter().all(|o| !o.is_stranded()));
    let fallback: std::collections::BTreeMap<FlowId, _> = outcomes
        .iter()
        .filter_map(|o| o.route().map(|r| (o.id(), r.clone())))
        .collect();

    let requests: Vec<AdmissionRequest> = order
        .iter()
        .map(|&id| {
            let binding = ctl.accepted().get(id).unwrap().clone();
            let route = fallback
                .get(&id)
                .cloned()
                .unwrap_or_else(|| binding.route.clone());
            AdmissionRequest::new(binding.flow, route, binding.priority)
        })
        .collect();
    ctl.release_batch(&order).unwrap();
    assert_eq!(
        ctl.partition(),
        &DependencyGraph::new(ctl.accepted()),
        "partition must stay exact after the batched release"
    );
    ctl.rebase(survivor.topology().clone()).unwrap();
    let decisions = ctl.request_batch(requests).unwrap();
    assert!(decisions.iter().all(|d| d.is_accepted()));

    assert_eq!(ctl.n_accepted(), n_before);
    assert_eq!(ctl.partition(), &DependencyGraph::new(ctl.accepted()));
}
