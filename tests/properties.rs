//! Property-based integration tests (proptest) on the core invariants of
//! the traffic model and the analysis.

use gmfnet::model::{packetize, EncapsulationConfig, LinkDemand};
use gmfnet::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary (but valid) GMF flow with 1..=8 frames.
fn arb_flow() -> impl Strategy<Value = GmfFlow> {
    prop::collection::vec(
        (
            100u64..60_000, // payload bytes
            5.0f64..100.0,  // min inter-arrival (ms)
            10.0f64..500.0, // deadline (ms)
            0.0f64..5.0,    // jitter (ms)
        ),
        1..=8,
    )
    .prop_map(|frames| {
        let specs = frames
            .into_iter()
            .map(|(payload, t, d, j)| FrameSpec {
                payload: Bits::from_bytes(payload),
                min_interarrival: Time::from_millis(t),
                deadline: Time::from_millis(d),
                jitter: Time::from_millis(j),
            })
            .collect();
        GmfFlow::new("prop-flow", specs).expect("generated frames are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packetization: fragment count and wire size are consistent with the
    /// Ethernet constants for any payload.
    #[test]
    fn packetization_invariants(payload_bytes in 1u64..200_000) {
        let p = packetize(Bits::from_bytes(payload_bytes), &EncapsulationConfig::paper());
        // At least one fragment; every fragment within the legal wire size.
        prop_assert!(p.n_ethernet_frames >= 1);
        prop_assert_eq!(p.n_ethernet_frames as usize, p.frame_wire_bits.len());
        for &wire in &p.frame_wire_bits {
            prop_assert!(wire.as_bits() <= 12304);
            prop_assert!(wire.as_bits() > 464);
        }
        // Total wire bits exceed the datagram (headers add overhead) but by
        // at most 464 bits per fragment.
        let datagram = p.datagram_bits.as_bits();
        let total = p.total_wire_bits.as_bits();
        prop_assert!(total >= datagram);
        prop_assert!(total <= datagram + 464 * p.n_ethernet_frames + 672);
        // Fragment count matches the closed-form ceiling.
        prop_assert_eq!(p.n_ethernet_frames, datagram.div_ceil(11840));
    }

    /// MX and NX are monotone in the window length and consistent with the
    /// whole-cycle aggregates — the property the fixed-point iterations of
    /// the analysis rely on.
    #[test]
    fn request_bound_functions_are_monotone(flow in arb_flow(), windows in prop::collection::vec(0.0f64..2_000.0, 1..20)) {
        let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), BitRate::from_mbps(100.0));
        let mut sorted = windows.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev_mx = Time::ZERO;
        let mut prev_nx = 0u64;
        for ms in sorted {
            let t = Time::from_millis(ms);
            let mx = demand.mx(t);
            let nx = demand.nx(t);
            prop_assert!(mx + Time::from_nanos(1.0) >= prev_mx, "MX must be monotone");
            prop_assert!(nx >= prev_nx, "NX must be monotone");
            // MX never exceeds the window itself plus whole cycles' worth of
            // transmission time, and never exceeds demand at full rate.
            prop_assert!(mx <= t + demand.csum());
            // NX is bounded by the number of cycles (+1) times NSUM.
            let cycles = t.div_ceil(demand.tsum()) + 1;
            prop_assert!(nx <= cycles * demand.nsum());
            prev_mx = mx;
            prev_nx = nx;
        }
        // Whole-cycle consistency.
        prop_assert!(demand.mx(demand.tsum()).approx_eq(demand.csum()));
        prop_assert_eq!(demand.nx(demand.tsum()), demand.nsum());
    }

    /// The sporadic over-approximation dominates the original flow in the
    /// long run and, window by window, up to one frame of slack.
    ///
    /// Exact pointwise domination of MX/NX does not hold at windows that are
    /// exact multiples of the collapsed period (the paper's MXS counts an
    /// arrival landing on the window edge, while the whole-cycle term of MX
    /// does not), so the per-window comparison allows one maximal frame.
    #[test]
    fn sporadic_collapse_dominates(flow in arb_flow(), windows in prop::collection::vec(0.1f64..1_000.0, 1..10)) {
        let cfg = EncapsulationConfig::paper();
        let speed = BitRate::from_mbps(100.0);
        let original = LinkDemand::new(&flow, &cfg, speed);
        let collapsed = LinkDemand::new(&flow.to_sporadic_overapproximation(), &cfg, speed);
        prop_assert!(collapsed.utilization() + 1e-12 >= original.utilization());
        prop_assert!(collapsed.max_c() + Time::from_nanos(1.0) >= original.max_c());
        for ms in windows {
            let t = Time::from_millis(ms);
            prop_assert!(
                collapsed.mx(t) + collapsed.max_c() + Time::from_nanos(1.0) >= original.mx(t)
            );
            prop_assert!(
                collapsed.nx(t) + collapsed.max_n_ethernet_frames() >= original.nx(t)
            );
        }
    }

    /// An isolated flow on a private two-hop path is always schedulable when
    /// its deadlines are generous, and the end-to-end bound grows with the
    /// payload.
    #[test]
    fn isolated_flow_bounds_scale_with_payload(payload in 500u64..30_000, period_ms in 20.0f64..80.0) {
        let mut topology = Topology::new();
        let a = topology.add_end_host("a");
        let sw = topology.add_switch(SwitchConfig::paper(), "sw");
        let b = topology.add_end_host("b");
        topology.add_duplex_link(a, sw, LinkProfile::ethernet_100m()).unwrap();
        topology.add_duplex_link(sw, b, LinkProfile::ethernet_100m()).unwrap();

        let mk = |bytes: u64| {
            let mut flows = FlowSet::new();
            let flow = cbr_flow("cbr", bytes, Time::from_millis(period_ms), Time::from_millis(500.0), Time::ZERO);
            let route = shortest_path(&topology, a, b).unwrap();
            flows.add(flow, route, Priority(7));
            flows
        };
        let small = analyze(&topology, &mk(payload), &AnalysisConfig::paper()).unwrap();
        let large = analyze(&topology, &mk(payload * 2), &AnalysisConfig::paper()).unwrap();
        prop_assert!(small.schedulable);
        prop_assert!(large.schedulable);
        prop_assert!(large.worst_bound().unwrap() >= small.worst_bound().unwrap());
    }
}
