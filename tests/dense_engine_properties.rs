//! Property-based tests of the dense-index analysis core: the interned
//! tables, the arena iterates, the Arc-shared reports and the dirty-flow
//! round skipping must all be invisible in the results.
//!
//! The oracle is [`gmfnet::analysis::analyze_reference`] — a deliberately
//! simple sequential keyed Picard engine that shares no hot-path code with
//! the production engine (tree-map jitter reads, per-frame stage walks,
//! no memoisation).  On random sweep-style and churn-style flow sets:
//!
//! (a) the production engine's `AnalysisReport` is `assert_eq!`-identical
//!     to the reference — bounds, hop breakdowns, verdicts, failure
//!     strings, iteration counts and residual traces — across worker
//!     threads 1/4 and round skipping on/off;
//! (b) with the `Anderson1` strategy the verdicts always match and the
//!     converged bounds are byte-identical (iteration traces aside);
//! (c) on churn-style suffixes (a departure-reshaped set), the dense
//!     engine still matches the reference, pinning the id-sparse case.

use gmfnet::analysis::{analyze, analyze_reference, AnalysisConfig, FixedPointStrategy};
use gmfnet::net::{FlowSet, Topology};
use gmfnet::workloads::{random_sweep_set, SweepConfig};
use proptest::prelude::*;

fn sweep_set(seed: u64, n_flows: usize, utilization: f64) -> (Topology, FlowSet) {
    random_sweep_set(seed, n_flows, utilization, &SweepConfig::default())
}

/// The engine axes the report must be invariant over: worker threads and
/// round skipping.
fn engine_axes() -> Vec<AnalysisConfig> {
    let mut axes = Vec::new();
    for threads in [1usize, 4] {
        for skip in [false, true] {
            axes.push(
                AnalysisConfig::paper()
                    .with_threads(threads)
                    .with_skip_unchanged_flows(skip),
            );
        }
    }
    axes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Dense engine == keyed reference, across threads and skipping.
    #[test]
    fn dense_reports_equal_keyed_reference(
        seed in 0u64..1_000_000,
        n_flows in 2usize..10,
        utilization in 0.1f64..1.1,
    ) {
        let (topology, set) = sweep_set(seed, n_flows, utilization);
        let reference = analyze_reference(&topology, &set, &AnalysisConfig::paper()).unwrap();
        for config in engine_axes() {
            let dense = analyze(&topology, &set, &config).unwrap();
            prop_assert_eq!(
                &reference, &dense,
                "threads = {}, skip = {}",
                config.threads, config.skip_unchanged_flows
            );
        }
    }

    /// (b) Anderson on the dense engine still lands on the reference
    /// bounds at convergence.
    #[test]
    fn anderson_dense_bounds_equal_keyed_reference(
        seed in 0u64..1_000_000,
        n_flows in 2usize..10,
        utilization in 0.1f64..0.9,
    ) {
        let (topology, set) = sweep_set(seed, n_flows, utilization);
        let reference = analyze_reference(&topology, &set, &AnalysisConfig::paper()).unwrap();
        for threads in [1usize, 4] {
            let config = AnalysisConfig::paper()
                .with_strategy(FixedPointStrategy::Anderson1)
                .with_threads(threads);
            let anderson = analyze(&topology, &set, &config).unwrap();
            prop_assert_eq!(reference.converged, anderson.converged);
            prop_assert_eq!(reference.schedulable, anderson.schedulable);
            if reference.converged {
                prop_assert_eq!(&reference.flows, &anderson.flows);
                prop_assert_eq!(&reference.failure, &anderson.failure);
            }
        }
    }

    /// (c) Churn-style sets (departures leave the id space sparse) still
    /// analyse byte-identically.
    #[test]
    fn dense_engine_matches_reference_after_departures(
        seed in 0u64..1_000_000,
        n_flows in 3usize..10,
        utilization in 0.1f64..0.9,
        drop_index in 0usize..3,
    ) {
        let (topology, mut set) = sweep_set(seed, n_flows, utilization);
        // Remove one flow (ids are never reused, so the binding list is
        // now sparse) and re-add a clone of another under a fresh id.
        let ids: Vec<_> = set.ids().collect();
        let departing = ids[drop_index % ids.len()];
        set.remove(departing).unwrap();
        let surviving = set.bindings()[0].clone();
        set.add(surviving.flow, surviving.route, surviving.priority);

        let reference = analyze_reference(&topology, &set, &AnalysisConfig::paper()).unwrap();
        for config in engine_axes() {
            let dense = analyze(&topology, &set, &config).unwrap();
            prop_assert_eq!(
                &reference, &dense,
                "threads = {}, skip = {}",
                config.threads, config.skip_unchanged_flows
            );
        }
    }
}

/// Round skipping must also be invisible through the warm-started,
/// dependency-scoped admission path (it composes with `Scope`): a warm
/// controller with skipping takes byte-identical decisions to a cold
/// controller without it.
#[test]
fn skipping_is_invisible_through_warm_admission() {
    use gmfnet::analysis::{AdmissionController, AdmissionMode, AdmissionRequest};
    let (topology, set) = sweep_set(20_080_511, 8, 0.5);
    let mut warm = AdmissionController::new(topology.clone(), AnalysisConfig::paper())
        .with_mode(AdmissionMode::Warm);
    let mut cold = AdmissionController::new(
        topology,
        AnalysisConfig::paper().with_skip_unchanged_flows(false),
    )
    .with_mode(AdmissionMode::Cold);
    for binding in set.bindings() {
        let request = AdmissionRequest::new(
            binding.flow.clone(),
            binding.route.clone(),
            binding.priority,
        );
        let w = warm
            .request_batch([request.clone()])
            .unwrap()
            .pop()
            .unwrap();
        let c = cold.request_batch([request]).unwrap().pop().unwrap();
        assert_eq!(w.is_accepted(), c.is_accepted());
        // Warm reports are shard-scoped; each entry matches the cold
        // (global) report's entry for the same flow bytewise.
        for flow_report in &w.report().flows {
            assert_eq!(Some(flow_report), c.report().flow(flow_report.flow));
        }
        assert_eq!(w.report().failure, c.report().failure);
        // Skipping + scoping can only reduce the per-decision work.
        assert!(w.cost().flow_analyses <= c.cost().flow_analyses);
    }
    assert_eq!(warm.accepted(), cold.accepted());
}
