//! Property-based tests of the incremental admission engine: warm starts,
//! dependency-scoped re-verification and departures must all be invisible
//! in the decisions and bounds.
//!
//! (a) Driving random sweep-style flow sets through a warm controller one
//!     flow at a time takes exactly the decisions a cold controller takes,
//!     and every decision's report is byte-identical (frame bounds,
//!     verdicts, failure attribution) to a cold `analyze` of the same
//!     trial set — iteration traces aside.  Warm reports cover the
//!     candidate's *shard*, so the comparison projects the global
//!     reference onto the flows the shard report carries.
//! (b) Releasing a random accepted flow and re-admitting the same binding
//!     restores identical reports for every flow.  "Identical" here is up
//!     to the analysis tolerance: the re-admitted flow's fresh id moves it
//!     to the *end* of every interference sum, and floating-point addition
//!     is not associative — the warm engine is byte-identical to a cold
//!     analysis of the same (reordered) trial set either way, which is
//!     what (a) pins down exactly.

use gmfnet::analysis::{
    analyze, AdmissionController, AdmissionDecision, AdmissionMode, AdmissionRequest,
    AnalysisConfig,
};
use gmfnet::model::GmfFlow;
use gmfnet::net::{shortest_path, star, FlowSet, Priority, Route, Topology};
use gmfnet::workloads::{random_flow_collection, SweepConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Submit one candidate through the batched admission API.
fn submit(
    ctl: &mut AdmissionController,
    flow: GmfFlow,
    route: Route,
    priority: Priority,
) -> AdmissionDecision {
    ctl.request_batch([AdmissionRequest::new(flow, route, priority)])
        .expect("routes on the star are structurally valid")
        .pop()
        .expect("one decision per request")
}

/// Random converging-star admission requests from the sweep generator:
/// each flow gets a random source, a random sink and a random priority.
fn random_requests(
    seed: u64,
    n_flows: usize,
    utilization: f64,
) -> (Topology, Vec<(GmfFlow, Route, Priority)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = SweepConfig::default();
    let flows = random_flow_collection(&mut rng, n_flows, utilization, &config.synthetic);
    // Two sinks so the dependency graph has genuinely disjoint regions and
    // the scoped re-verification path is exercised, not just warm starts.
    let (topology, _switch, hosts) = star(config.n_sources + 2, config.link, config.switch);
    let sinks = &hosts[..2];
    let sources = &hosts[2..];
    let requests = flows
        .into_iter()
        .map(|flow| {
            let source = sources[rng.gen_range(0..sources.len())];
            let sink = sinks[rng.gen_range(0..sinks.len())];
            let route = shortest_path(&topology, source, sink).expect("star is connected");
            let priority = Priority(rng.gen_range(0..8));
            (flow, route, priority)
        })
        .collect();
    (topology, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) Warm-started admission is byte-identical to cold analysis.
    #[test]
    fn warm_admission_is_byte_identical_to_cold_analysis(
        seed in 0u64..1_000_000,
        n_flows in 2usize..9,
        utilization in 0.1f64..0.9,
    ) {
        let analysis = AnalysisConfig::paper();
        let (topology, requests) = random_requests(seed, n_flows, utilization);
        let mut warm = AdmissionController::new(topology.clone(), analysis);
        let mut cold =
            AdmissionController::new(topology.clone(), analysis).with_mode(AdmissionMode::Cold);
        prop_assert_eq!(warm.mode(), AdmissionMode::Warm);

        for (flow, route, priority) in requests {
            // The reference: a cold holistic analysis of the very trial
            // set the warm controller is about to decide on.
            let mut trial: FlowSet = warm.accepted().clone();
            trial.add(flow.clone(), route.clone(), priority);
            let reference = analyze(&topology, &trial, &analysis).unwrap();

            let w = submit(&mut warm, flow.clone(), route.clone(), priority);
            let c = submit(&mut cold, flow, route, priority);

            // Decisions agree with each other and with the reference.
            prop_assert_eq!(w.is_accepted(), c.is_accepted());
            prop_assert_eq!(w.is_accepted(), reference.schedulable);
            prop_assert_eq!(w.id(), c.id());

            // Bounds, verdicts and failure attribution are byte-identical
            // (iteration traces aside).  For non-converged trials the warm
            // engine restarts cold, so even the partial reports match.
            // The warm report covers the candidate's shard; every entry it
            // carries must equal the global reference's entry bytewise.
            for flow_report in &w.report().flows {
                prop_assert_eq!(Some(flow_report), reference.flow(flow_report.flow));
            }
            prop_assert_eq!(w.report().schedulable, reference.schedulable);
            prop_assert_eq!(&w.report().failure, &reference.failure);
            prop_assert_eq!(w.report().converged, reference.converged);
            prop_assert_eq!(&c.report().flows, &reference.flows);

            // The structured rejection metadata agrees too.
            match (&w, &c) {
                (
                    gmfnet::analysis::AdmissionDecision::Rejected { victim: vw, reason: rw, .. },
                    gmfnet::analysis::AdmissionDecision::Rejected { victim: vc, reason: rc, .. },
                ) => {
                    prop_assert_eq!(vw, vc);
                    prop_assert_eq!(rw, rc);
                }
                (a, b) => prop_assert_eq!(a.is_accepted(), b.is_accepted()),
            }
        }
        prop_assert_eq!(warm.accepted(), cold.accepted());
    }

    /// (b) Release followed by re-admission restores identical reports.
    #[test]
    fn release_and_readmission_restores_identical_reports(
        seed in 0u64..1_000_000,
        n_flows in 2usize..7,
        utilization in 0.05f64..0.5,
    ) {
        let analysis = AnalysisConfig::paper();
        let (topology, requests) = random_requests(seed, n_flows, utilization);
        let mut ctl = AdmissionController::new(topology.clone(), analysis);
        let mut admitted = Vec::new();
        for (flow, route, priority) in requests {
            let d = submit(&mut ctl, flow.clone(), route.clone(), priority);
            if d.is_accepted() {
                admitted.push((d.id(), flow, route, priority));
            }
        }
        // Vacuously true when the random set admits nothing (very high
        // utilization draws); the interesting cases dominate.
        if !admitted.is_empty() {
            let before = ctl.reanalyze().unwrap();

            // Tear down a pseudo-random accepted flow and bring the same
            // binding back.
            let pick = (seed as usize) % admitted.len();
            let (old_id, flow, route, priority) = admitted[pick].clone();
            ctl.release(old_id).unwrap();
            let d = submit(&mut ctl, flow, route, priority);
            prop_assert!(d.is_accepted(), "re-admission of an admitted flow");
            let after = ctl.reanalyze().unwrap();

            // Every flow's report is restored (the re-admitted one under
            // its fresh id) within the analysis tolerance — the fresh id
            // reorders the interference sums, so the last ulp can move.
            for flow_report in &before.flows {
                let restored = if flow_report.flow == old_id {
                    after.flow(d.id()).unwrap()
                } else {
                    after.flow(flow_report.flow).unwrap()
                };
                prop_assert_eq!(&restored.name, &flow_report.name);
                prop_assert_eq!(restored.frames.len(), flow_report.frames.len());
                for (a, b) in restored.frames.iter().zip(&flow_report.frames) {
                    prop_assert!(
                        a.bound.approx_eq(b.bound),
                        "bound {} vs {}", a.bound, b.bound
                    );
                    prop_assert_eq!(a.deadline, b.deadline);
                    prop_assert_eq!(a.source_jitter, b.source_jitter);
                    prop_assert_eq!(a.hops.len(), b.hops.len());
                    for (ha, hb) in a.hops.iter().zip(&b.hops) {
                        prop_assert_eq!(ha.resource, hb.resource);
                        prop_assert_eq!(ha.stage, hb.stage);
                        prop_assert!(
                            ha.response.approx_eq(hb.response),
                            "response {} vs {}", ha.response, hb.response
                        );
                    }
                }
            }
            prop_assert_eq!(before.schedulable, after.schedulable);
        }
    }
}

/// The warm cache survives departures: after a release, the next trial
/// still runs warm and still matches a cold analysis byte for byte.
#[test]
fn warm_trials_after_departures_match_cold_analysis() {
    let analysis = AnalysisConfig::paper();
    let (topology, requests) = random_requests(1234, 8, 0.4);
    let mut ctl = AdmissionController::new(topology.clone(), analysis);
    let mut accepted_ids = Vec::new();
    let mut leftover = Vec::new();
    for (i, (flow, route, priority)) in requests.into_iter().enumerate() {
        if i < 5 {
            let d = submit(&mut ctl, flow, route, priority);
            if d.is_accepted() {
                accepted_ids.push(d.id());
            }
        } else {
            leftover.push((flow, route, priority));
        }
    }
    // Release every other accepted flow, then admit the leftovers.
    for id in accepted_ids.iter().step_by(2) {
        ctl.release(*id).unwrap();
    }
    for (flow, route, priority) in leftover {
        let mut trial = ctl.accepted().clone();
        trial.add(flow.clone(), route.clone(), priority);
        let reference = analyze(&topology, &trial, &analysis).unwrap();
        let d = submit(&mut ctl, flow, route, priority);
        assert_eq!(d.is_accepted(), reference.schedulable);
        for flow_report in &d.report().flows {
            assert_eq!(Some(flow_report), reference.flow(flow_report.flow));
        }
        assert_eq!(d.report().failure, reference.failure);
    }
}
