//! Property-based tests of the holistic fixed-point engine: the Anderson
//! acceleration and the parallel Jacobi rounds must both be invisible in
//! the results.
//!
//! (a) On random converging flow sets (the acceptance-sweep generator),
//!     the `Anderson1` strategy converges to exactly the bounds `Picard`
//!     converges to.
//! (b) The per-flow analyses of a round are independent, so the full
//!     report — bounds, iteration count, convergence trace — is
//!     `assert_eq!`-identical across worker-thread counts 1/2/8.

use gmfnet::analysis::{analyze, AnalysisConfig, FixedPointStrategy};
use gmfnet::workloads::SweepConfig;
use proptest::prelude::*;

/// Build a random converging flow set from the sweep generator.
fn random_sweep_set(
    seed: u64,
    n_flows: usize,
    utilization: f64,
) -> (gmfnet::net::Topology, gmfnet::net::FlowSet) {
    gmfnet::workloads::random_sweep_set(seed, n_flows, utilization, &SweepConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Anderson-accelerated bounds equal Picard bounds at convergence.
    #[test]
    fn anderson_bounds_equal_picard_bounds(
        seed in 0u64..1_000_000,
        n_flows in 2usize..10,
        utilization in 0.1f64..0.9,
    ) {
        let (topology, set) = random_sweep_set(seed, n_flows, utilization);
        let picard = analyze(&topology, &set, &AnalysisConfig::paper()).unwrap();
        let anderson = analyze(
            &topology,
            &set,
            &AnalysisConfig::paper().with_strategy(FixedPointStrategy::Anderson1),
        )
        .unwrap();
        // The two strategies always agree on the verdict, and at
        // convergence every frame bound is byte-identical.
        prop_assert_eq!(picard.converged, anderson.converged);
        prop_assert_eq!(picard.schedulable, anderson.schedulable);
        if picard.converged {
            prop_assert_eq!(&picard.flows, &anderson.flows);
            prop_assert_eq!(&picard.failure, &anderson.failure);
        }
    }

    /// (b) Parallel and sequential rounds produce `assert_eq!` reports.
    #[test]
    fn parallel_reports_equal_sequential_reports(
        seed in 0u64..1_000_000,
        n_flows in 2usize..10,
        utilization in 0.1f64..1.1,
    ) {
        let (topology, set) = random_sweep_set(seed, n_flows, utilization);
        let sequential = analyze(&topology, &set, &AnalysisConfig::paper()).unwrap();
        for threads in [2usize, 8] {
            let parallel = analyze(
                &topology,
                &set,
                &AnalysisConfig::paper().with_threads(threads),
            )
            .unwrap();
            // Everything, including the convergence trace, is identical.
            prop_assert_eq!(&sequential, &parallel);
        }
    }
}

/// The engine axes compose: an accelerated run is also thread-invariant.
#[test]
fn anderson_is_thread_invariant_too() {
    let (topology, set) = random_sweep_set(7, 8, 0.5);
    let anderson = AnalysisConfig::paper().with_strategy(FixedPointStrategy::Anderson1);
    let sequential = analyze(&topology, &set, &anderson).unwrap();
    for threads in [2usize, 8] {
        let parallel = analyze(&topology, &set, &anderson.with_threads(threads)).unwrap();
        assert_eq!(sequential, parallel, "threads = {threads}");
    }
}
