//! Cross-crate integration tests: every worked number of the paper is
//! reproduced by the public API (the same checks the experiment binaries
//! print, but enforced).

use gmfnet::model::{max_frame_transmission_time, LinkDemand};
use gmfnet::prelude::*;

/// Figure 3 / Figure 4: the MPEG example flow and its per-link parameters
/// on the 10 Mbit/s link(0,4).
#[test]
fn figure3_and_figure4_worked_values() {
    let flow = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
    assert_eq!(flow.n_frames(), 9);
    assert!(flow.tsum().approx_eq(Time::from_millis(270.0)));

    let demand = LinkDemand::new(
        &flow,
        &EncapsulationConfig::paper(),
        BitRate::from_mbps(10.0),
    );
    // NSUM = 94 Ethernet frames per GOP (the paper's worked value).
    assert_eq!(demand.nsum(), 94);
    // TSUM = 270 ms.
    assert!(demand.tsum().approx_eq(Time::from_millis(270.0)));
    // MFT = 12304 bits / 10^7 bit/s = 1.2304 ms (equation 1).
    assert!(demand.mft().approx_eq(Time::from_millis(1.2304)));
    assert!(
        max_frame_transmission_time(BitRate::from_bps(1e7)).approx_eq(Time::from_millis(1.2304))
    );
    // The flow alone uses ~40% of the access link.
    assert!(demand.utilization() > 0.35 && demand.utilization() < 0.45);
}

/// Figure 5 worked example and the conclusion's dimensioning claim.
#[test]
fn circ_worked_values() {
    let cfg = SwitchConfig::paper();
    assert!(cfg.circ(4).approx_eq(Time::from_micros(14.8)));
    assert!(cfg
        .with_processors(16)
        .circ(48)
        .approx_eq(Time::from_micros(11.1)));

    // In the Figure 1 network, switch 4 has exactly 4 interfaces, so its
    // CIRC matches the worked example.
    let (topology, net) = paper_figure1();
    assert_eq!(topology.n_interfaces(net.switches[0]), 4);
    assert!(topology
        .circ(net.switches[0])
        .unwrap()
        .approx_eq(Time::from_micros(14.8)));
}

/// Figure 1 + Figure 2: the example network and the example route.
#[test]
fn figure1_and_figure2_structure() {
    let (topology, net) = paper_figure1();
    assert_eq!(topology.n_nodes(), 8);
    let route = shortest_path(&topology, net.hosts[0], net.hosts[3]).unwrap();
    assert_eq!(
        route.nodes(),
        &[net.hosts[0], net.switches[0], net.switches[2], net.hosts[3]]
    );
    // The access link of the worked example runs at 10^7 bit/s.
    assert_eq!(
        topology
            .link_between(net.hosts[0], net.switches[0])
            .unwrap()
            .speed
            .as_bps(),
        1e7
    );
}

/// Figure 6 + "Putting it all together": the paper scenario is schedulable,
/// the holistic iteration converges, and the admission controller accepts
/// the flows one by one.
#[test]
fn end_to_end_analysis_of_the_paper_scenario() {
    let (scenario, ids) = gmf_workloads::paper_scenario();
    let report = analyze(
        &scenario.topology,
        &scenario.flows,
        &AnalysisConfig::paper(),
    )
    .unwrap();
    assert!(report.converged);
    assert!(report.schedulable);
    // Every resource of the Figure 2 route shows up in the video flow's
    // per-hop breakdown.
    let video = report.flow(gmfnet::model::FlowId(ids.video)).unwrap();
    assert_eq!(video.frames.len(), 9);
    assert!(video.frames.iter().all(|f| f.hops.len() == 5));
    // The I+P frame dominates the cycle.
    assert_eq!(video.worst_bound().unwrap(), video.frames[0].bound);

    // The same flows pass through the admission controller one by one.
    let mut controller =
        AdmissionController::new(scenario.topology.clone(), AnalysisConfig::paper());
    let decisions = controller
        .request_batch(scenario.flows.bindings().iter().map(|binding| {
            gmfnet::analysis::AdmissionRequest::new(
                binding.flow.clone(),
                binding.route.clone(),
                binding.priority,
            )
        }))
        .unwrap();
    for (decision, binding) in decisions.iter().zip(scenario.flows.bindings()) {
        assert!(
            decision.is_accepted(),
            "flow {} rejected",
            binding.flow.name()
        );
    }
    assert_eq!(controller.n_accepted(), scenario.flows.len());
}

/// The sporadic-model baseline cannot even bound the paper's video flow on
/// the 10 Mbit/s access link (the motivation for the GMF model).
#[test]
fn sporadic_collapse_fails_where_gmf_succeeds() {
    let (scenario, _) = gmf_workloads::paper_scenario();
    let cfg = AnalysisConfig::paper();
    let gmf = analyze(&scenario.topology, &scenario.flows, &cfg).unwrap();
    let sporadic = analyze_sporadic_baseline(&scenario.topology, &scenario.flows, &cfg).unwrap();
    assert!(gmf.schedulable);
    assert!(!sporadic.schedulable);
    // The utilization check agrees with the GMF verdict here.
    assert!(
        utilization_check(&scenario.topology, &scenario.flows)
            .unwrap()
            .feasible
    );
}

/// The conclusion's claim: with 1 Gbit/s links and multiprocessor switches
/// the same traffic has two orders of magnitude more headroom.
#[test]
fn gigabit_network_headroom() {
    let (slow, _) = gmf_workloads::paper_scenario();
    let fast_cfg = PaperNetworkConfig {
        access: LinkProfile::ethernet_1g(),
        backbone: LinkProfile::ethernet_1g(),
        switch: SwitchConfig::paper().with_processors(16),
    };
    let (fast, _) = gmf_workloads::paper_scenario_with(fast_cfg);
    let cfg = AnalysisConfig::paper();
    let slow_report = analyze(&slow.topology, &slow.flows, &cfg).unwrap();
    let fast_report = analyze(&fast.topology, &fast.flows, &cfg).unwrap();
    assert!(slow_report.schedulable && fast_report.schedulable);
    let ratio = slow_report.worst_bound().unwrap() / fast_report.worst_bound().unwrap();
    assert!(
        ratio > 20.0,
        "expected a large speed-up from gigabit links, got {ratio:.1}x"
    );
}
